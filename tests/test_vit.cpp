// ViT backbone + its graph lowering: attention-shaped kernel coverage
// (softmax over seq x seq rows with odd tails, batched kNT GEMM at head
// widths), module gradchecks for the new LayerNorm/GELU/VitBlock pieces,
// and the compiled == eager bitwise gates at every batch width and pool
// size — the same contract the conv families pin in test_graph.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/simclr.hpp"
#include "core/threadpool.hpp"
#include "data/synth.hpp"
#include "graph/executor.hpp"
#include "graph/passes.hpp"
#include "graph/tracer.hpp"
#include "models/encoder.hpp"
#include "models/vit.hpp"
#include "nn/activations.hpp"
#include "nn/layernorm.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "testutil.hpp"
#include "util/rng.hpp"

namespace cq {
namespace {

models::Encoder eval_vit(std::uint64_t seed) {
  Rng rng(seed);
  auto enc = models::make_encoder("vit", rng);
  enc.policy->set_full_precision();
  enc.backbone->set_mode(nn::Mode::kEval);
  return enc;
}

void expect_bitwise(const Tensor& got, const Tensor& want) {
  ASSERT_EQ(got.shape(), want.shape());
  const float* g = got.data();
  const float* w = want.data();
  for (std::int64_t i = 0; i < got.numel(); ++i) EXPECT_EQ(g[i], w[i]) << i;
}

constexpr std::int64_t kImg = 16;

// Attention rows are seq x seq — including seq values that leave vector-width
// tails. The SIMD and portable softmax must agree bitwise (the determinism
// contract attention inherits).
TEST(VitKernels, SoftmaxRowsAttentionShapesMatchScalarBitwise) {
  Rng rng(3);
  for (std::int64_t seq : {3, 7, 16, 17, 33}) {
    SCOPED_TRACE(seq);
    Tensor scores = Tensor::uniform(Shape{seq, seq}, rng, -4.0f, 4.0f);
    Tensor a = scores;
    Tensor b = scores;
    kernels::softmax_rows(a.data(), seq, seq);
    kernels::scalar::softmax_rows(b.data(), seq, seq);
    for (std::int64_t i = 0; i < seq * seq; ++i)
      ASSERT_EQ(a.data()[i], b.data()[i]) << i;
    // Rows are probability distributions.
    for (std::int64_t r = 0; r < seq; ++r) {
      double s = 0.0;
      for (std::int64_t c = 0; c < seq; ++c) s += a.data()[r * seq + c];
      EXPECT_NEAR(s, 1.0, 1e-5) << r;
    }
  }
}

// The attention score GEMM (Q K^T) at real head widths, checked against a
// naive double-accumulated reference.
TEST(VitKernels, ScoreGemmKntHeadShapesMatchReference) {
  Rng rng(5);
  const std::int64_t seq = 16;
  for (std::int64_t dh : {32, 48, 64}) {
    SCOPED_TRACE(dh);
    Tensor q = Tensor::uniform(Shape{seq, dh}, rng, -1.0f, 1.0f);
    Tensor k = Tensor::uniform(Shape{seq, dh}, rng, -1.0f, 1.0f);
    Tensor s = Tensor::zeros(Shape{seq, seq});
    gemm::gemm(gemm::Trans::kNT, seq, seq, dh, q.data(), k.data(), s.data(),
               /*accumulate=*/false);
    for (std::int64_t i = 0; i < seq; ++i)
      for (std::int64_t j = 0; j < seq; ++j) {
        double ref = 0.0;
        for (std::int64_t d = 0; d < dh; ++d)
          ref += static_cast<double>(q.at(i, d)) * k.at(j, d);
        EXPECT_NEAR(s.at(i, j), ref, 1e-4 * (1.0 + std::abs(ref)))
            << i << "," << j;
      }
  }
}

TEST(VitModules, LayerNormGradcheck) {
  Rng rng(7);
  nn::LayerNorm ln(12, 1e-5f, "ln");
  ln.set_mode(nn::Mode::kTrain);
  Tensor x = Tensor::uniform(Shape{3, 5, 12}, rng, -2.0f, 2.0f);
  test::check_module_gradients(ln, x, rng);
}

TEST(VitModules, GeluGradcheck) {
  Rng rng(9);
  nn::GELU gelu;
  gelu.set_mode(nn::Mode::kTrain);
  Tensor x = Tensor::uniform(Shape{4, 33}, rng, -3.0f, 3.0f);
  test::check_module_gradients(gelu, x, rng);
}

TEST(VitModules, VitBlockGradcheck) {
  Rng rng(11);
  auto policy = std::make_shared<quant::QuantPolicy>();
  policy->set_full_precision();
  models::VitBlock block(/*dim=*/8, /*heads=*/2, /*mlp_dim=*/16, policy, rng,
                         "blk");
  block.set_mode(nn::Mode::kTrain);
  Tensor x = Tensor::uniform(Shape{2, 4, 8}, rng, -1.0f, 1.0f);
  test::check_module_gradients(block, x, rng);
}

TEST(VitModules, PatchEmbedGradcheck) {
  Rng rng(13);
  auto policy = std::make_shared<quant::QuantPolicy>();
  policy->set_full_precision();
  models::PatchEmbed pe(/*in_channels=*/2, /*image_size=*/8, /*patch=*/4,
                        /*dim=*/6, policy, rng, "patch");
  pe.set_mode(nn::Mode::kTrain);
  Tensor x = Tensor::uniform(Shape{2, 2, 8, 8}, rng, -1.0f, 1.0f);
  test::check_module_gradients(pe, x, rng);
}

// The tracer emits one node per ViT sub-op and the passes reduce them to
// the executor's supported set with every Linear int8-lowered.
TEST(VitGraph, TraceAndLowerRoundTrip) {
  auto enc = eval_vit(17);
  graph::Graph g = graph::trace(*enc.backbone, Shape{3, kImg, kImg});
  const std::string text = graph::dump(g);
  EXPECT_NE(text.find("patch_embed"), std::string::npos);
  EXPECT_NE(text.find("attn_core"), std::string::npos);
  EXPECT_NE(text.find("layernorm"), std::string::npos);
  EXPECT_NE(text.find("gelu"), std::string::npos);
  EXPECT_NE(text.find("seq_mean"), std::string::npos);
  graph::run_default_passes(g, graph::Precision::kInt8);
  std::size_t int8_linears = 0;
  for (const graph::Node& n : g.nodes) {
    EXPECT_NE(n.op, graph::Op::kIdentity) << n.label;
    if (n.op == graph::Op::kLinear) {
      EXPECT_EQ(n.precision, graph::Precision::kInt8) << n.label;
      ++int8_linears;
    }
    // Patchify stays fp32: it is the first layer and not a kLinear node.
    if (n.op == graph::Op::kPatchEmbed) {
      EXPECT_EQ(n.precision, graph::Precision::kF32);
    }
  }
  EXPECT_EQ(int8_linears, 8u);  // 2 blocks x (qkv, proj, fc1, fc2)
}

// The compiled fp32 plan reproduces the eager module tree bit for bit at
// every batch width up to the plan's max.
TEST(VitGraph, CompiledMatchesEagerFp32AcrossWidths) {
  auto enc = eval_vit(19);
  const std::int64_t max_batch = 5;
  auto model =
      graph::compile(*enc.backbone, Shape{3, kImg, kImg},
                     graph::CompileOptions{max_batch,
                                           graph::Precision::kF32, true});
  Rng rng(23);
  for (std::int64_t n = 1; n <= max_batch; ++n) {
    SCOPED_TRACE(n);
    const Tensor x = Tensor::uniform(Shape{n, 3, kImg, kImg}, rng,
                                     -1.0f, 1.0f);
    const Tensor eager = enc.backbone->forward(x);
    expect_bitwise(model.forward(x), eager);
  }
}

// Int8 plan: batch-N equals N batch-1 forwards bitwise (per-sample scales
// must not see the rest of the batch), and stays close to fp32.
TEST(VitGraph, CompiledInt8BatchedEqualsSerial) {
  auto enc = eval_vit(29);
  auto model =
      graph::compile(*enc.backbone, Shape{3, kImg, kImg},
                     graph::CompileOptions{4, graph::Precision::kInt8, true});
  Rng rng(31);
  const Tensor batch = Tensor::uniform(Shape{4, 3, kImg, kImg}, rng,
                                       -1.0f, 1.0f);
  const Tensor batched = model.forward(batch);  // copy: arena reused below
  const std::int64_t per = 3 * kImg * kImg;
  for (std::int64_t i = 0; i < 4; ++i) {
    Tensor single(Shape{1, 3, kImg, kImg});
    std::copy(batch.data() + i * per, batch.data() + (i + 1) * per,
              single.data());
    const Tensor& feats = model.forward(single);
    for (std::int64_t c = 0; c < feats.dim(1); ++c)
      EXPECT_EQ(batched.at(i, c), feats.at(0, c)) << i << "," << c;
  }
}

// Pool-size sweep: the per-image slices and elementwise range splits must be
// invisible — every thread count reproduces the serial bytes, in BOTH
// precisions.
TEST(VitGraph, CompiledBitwiseIdenticalAcrossThreadCounts) {
  core::ThreadPool& pool = core::ThreadPool::instance();
  const std::size_t old_size = pool.size();
  for (auto precision : {graph::Precision::kF32, graph::Precision::kInt8}) {
    SCOPED_TRACE(precision == graph::Precision::kF32 ? "fp32" : "int8");
    auto enc = eval_vit(37);
    auto model = graph::compile(*enc.backbone, Shape{3, kImg, kImg},
                                graph::CompileOptions{6, precision, true});
    Rng rng(41);
    for (std::int64_t n : {1, 3, 6}) {
      SCOPED_TRACE(n);
      const Tensor batch = Tensor::uniform(Shape{n, 3, kImg, kImg}, rng,
                                           -1.0f, 1.0f);
      pool.set_size(1);
      const Tensor serial = model.forward(batch);  // copy: arena reused below
      for (std::size_t threads : {2u, 3u, 8u}) {
        SCOPED_TRACE(threads);
        pool.set_size(threads);
        expect_bitwise(model.forward(batch), serial);
      }
    }
    pool.set_size(old_size);
  }
}

// End-to-end: the vit arch trains under the SimCLR/CQ runner like the conv
// families — loss stays finite over a couple of tiny epochs.
TEST(VitTraining, SimclrSmokeStaysFinite) {
  auto cfg_data = data::synth_cifar_config();
  Rng drng(cfg_data.seed);
  const auto ds = data::make_synth_dataset(cfg_data, 16, drng);
  Rng rng(43);
  auto enc = models::make_encoder("vit", rng);
  core::PretrainConfig cfg;
  cfg.variant = core::CqVariant::kCqA;
  cfg.precisions = quant::PrecisionSet::range(6, 16);
  cfg.epochs = 1;
  cfg.batch_size = 8;
  cfg.lr = 0.05f;
  cfg.warmup_epochs = 0;
  cfg.proj_hidden = 16;
  cfg.proj_dim = 8;
  core::SimClrCqTrainer trainer(enc, cfg);
  const auto stats = trainer.train(ds);
  EXPECT_FALSE(stats.diverged);
}

// Checkpoint round trip covers the new parameter kinds (pos embeddings,
// LayerNorm gamma/beta) through save_module/load_module.
TEST(VitModules, CheckpointRoundTripBitwise) {
  auto enc = eval_vit(47);
  auto enc2 = eval_vit(48);  // different init
  const std::string path = "test_vit_ckpt.bin";
  models::save_module(path, *enc.backbone);
  models::load_module(path, *enc2.backbone);
  Rng rng(49);
  const Tensor x = Tensor::uniform(Shape{2, 3, kImg, kImg}, rng, -1.0f, 1.0f);
  expect_bitwise(enc2.backbone->forward(x), enc.backbone->forward(x));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cq
