#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.hpp"
#include "optim/adam.hpp"
#include "optim/schedule.hpp"
#include "optim/sgd.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

// Minimize f(w) = 0.5 * |w - target|^2 by feeding grad = w - target.
void quadratic_steps(nn::Parameter& p, const Tensor& target, auto& opt,
                     int steps) {
  for (int s = 0; s < steps; ++s) {
    for (std::int64_t i = 0; i < p.value.numel(); ++i)
      p.grad[i] = p.value[i] - target[i];
    opt.step();
  }
}

TEST(Sgd, ConvergesOnQuadratic) {
  nn::Parameter p(Tensor::from({5.0f, -3.0f}), "w");
  Tensor target = Tensor::from({1.0f, 2.0f});
  optim::Sgd sgd({&p}, {.lr = 0.1f, .momentum = 0.0f});
  quadratic_steps(p, target, sgd, 200);
  EXPECT_NEAR(p.value[0], 1.0f, 1e-3);
  EXPECT_NEAR(p.value[1], 2.0f, 1e-3);
}

TEST(Sgd, MomentumConvergesFasterThanPlain) {
  nn::Parameter a(Tensor::from({10.0f}), "a");
  nn::Parameter b(Tensor::from({10.0f}), "b");
  Tensor target = Tensor::from({0.0f});
  optim::Sgd plain({&a}, {.lr = 0.02f, .momentum = 0.0f});
  optim::Sgd heavy({&b}, {.lr = 0.02f, .momentum = 0.9f});
  quadratic_steps(a, target, plain, 30);
  quadratic_steps(b, target, heavy, 30);
  EXPECT_LT(std::abs(b.value[0]), std::abs(a.value[0]));
}

TEST(Sgd, ZeroesGradsAfterStep) {
  nn::Parameter p(Tensor::from({1.0f}), "w");
  optim::Sgd sgd({&p}, {.lr = 0.1f});
  p.grad[0] = 2.0f;
  sgd.step();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(Sgd, WeightDecayShrinksDecayedParamsOnly) {
  nn::Parameter w(Tensor::from({1.0f}), "w", /*decay=*/true);
  nn::Parameter b(Tensor::from({1.0f}), "b", /*decay=*/false);
  optim::Sgd sgd({&w, &b}, {.lr = 0.1f, .momentum = 0.0f,
                            .weight_decay = 0.5f});
  sgd.step();  // zero gradients: only decay acts
  EXPECT_LT(w.value[0], 1.0f);
  EXPECT_FLOAT_EQ(b.value[0], 1.0f);
}

TEST(Sgd, ReportsGradNorm) {
  nn::Parameter p(Tensor::from({3.0f, 4.0f}), "w");
  optim::Sgd sgd({&p}, {.lr = 0.0f, .momentum = 0.0f});
  p.grad[0] = 3.0f;
  p.grad[1] = 4.0f;
  sgd.step();
  EXPECT_NEAR(sgd.last_grad_norm(), 5.0f, 1e-5);
}

TEST(Sgd, ClipNormLimitsUpdate) {
  nn::Parameter a(Tensor::from({0.0f}), "a");
  nn::Parameter b(Tensor::from({0.0f}), "b");
  optim::Sgd clipped({&a}, {.lr = 1.0f, .momentum = 0.0f, .clip_norm = 1.0f});
  optim::Sgd unclipped({&b}, {.lr = 1.0f, .momentum = 0.0f});
  a.grad[0] = 100.0f;
  b.grad[0] = 100.0f;
  clipped.step();
  unclipped.step();
  EXPECT_NEAR(a.value[0], -1.0f, 1e-5);
  EXPECT_NEAR(b.value[0], -100.0f, 1e-4);
}

TEST(Adam, ConvergesOnQuadratic) {
  nn::Parameter p(Tensor::from({5.0f, -5.0f}), "w");
  Tensor target = Tensor::from({1.0f, 1.0f});
  optim::Adam adam({&p}, {.lr = 0.1f});
  quadratic_steps(p, target, adam, 300);
  EXPECT_NEAR(p.value[0], 1.0f, 1e-2);
  EXPECT_NEAR(p.value[1], 1.0f, 1e-2);
}

TEST(Adam, FirstStepSizeApproxLr) {
  // Bias correction makes the first Adam step ~lr in magnitude.
  nn::Parameter p(Tensor::from({0.0f}), "w");
  optim::Adam adam({&p}, {.lr = 0.01f});
  p.grad[0] = 123.0f;
  adam.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4);
}

TEST(Cosine, StartsAtBaseEndsNearFinal) {
  optim::CosineSchedule sched(1.0f, 100);
  EXPECT_NEAR(sched.lr_at(0), 1.0f, 1e-3);
  EXPECT_NEAR(sched.lr_at(99), 0.0f, 2e-3);
}

TEST(Cosine, MonotoneDecreasingWithoutWarmup) {
  optim::CosineSchedule sched(0.5f, 50);
  for (int s = 1; s < 50; ++s)
    EXPECT_LE(sched.lr_at(s), sched.lr_at(s - 1) + 1e-7f);
}

TEST(Cosine, WarmupRampsLinearly) {
  optim::CosineSchedule sched(1.0f, 100, 10);
  EXPECT_NEAR(sched.lr_at(0), 0.1f, 1e-5);
  EXPECT_NEAR(sched.lr_at(4), 0.5f, 1e-5);
  EXPECT_NEAR(sched.lr_at(9), 1.0f, 1e-5);
  // After warmup, decays.
  EXPECT_GT(sched.lr_at(10), sched.lr_at(50));
}

TEST(Cosine, RespectsFinalLr) {
  optim::CosineSchedule sched(1.0f, 100, 0, 0.2f);
  EXPECT_GE(sched.lr_at(99), 0.2f - 1e-4f);
  EXPECT_NEAR(sched.lr_at(50), 0.6f, 0.02f);
}

TEST(Cosine, ClampsOutOfRangeSteps) {
  optim::CosineSchedule sched(1.0f, 10);
  EXPECT_FLOAT_EQ(sched.lr_at(-5), sched.lr_at(0));
  EXPECT_FLOAT_EQ(sched.lr_at(500), sched.lr_at(9));
}

TEST(Cosine, RejectsBadConfig) {
  EXPECT_THROW(optim::CosineSchedule(0.0f, 10), CheckError);
  EXPECT_THROW(optim::CosineSchedule(1.0f, 10, 10), CheckError);
}

TEST(Sgd, TrainsLinearRegression) {
  // End-to-end sanity: fit y = 2x with a Linear layer and SGD.
  Rng rng(1);
  nn::Linear layer(1, 1, rng);
  optim::Sgd sgd(layer.parameters(), {.lr = 0.05f, .momentum = 0.9f});
  for (int step = 0; step < 200; ++step) {
    Tensor x = Tensor::uniform(Shape{8, 1}, rng, -1.0f, 1.0f);
    Tensor y = layer.forward(x);
    Tensor grad(y.shape());
    for (std::int64_t i = 0; i < 8; ++i)
      grad.at(i, 0) = (y.at(i, 0) - 2.0f * x.at(i, 0)) / 8.0f;
    layer.backward(grad);
    sgd.step();
  }
  EXPECT_NEAR(layer.weight().value[0], 2.0f, 0.05f);
  EXPECT_NEAR(layer.bias()->value[0], 0.0f, 0.05f);
}

}  // namespace
}  // namespace cq
