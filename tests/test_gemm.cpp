// Equivalence and numerics tests for the blocked GEMM kernels against the
// golden naive loops in gemm::reference.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "core/threadpool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace cq {
namespace {

constexpr float kRelTol = 1e-4f;

const char* trans_name(gemm::Trans t) {
  switch (t) {
    case gemm::Trans::kNN: return "NN";
    case gemm::Trans::kTN: return "TN";
    case gemm::Trans::kNT: return "NT";
  }
  return "?";
}

// Operand element counts as stored for each variant.
std::pair<std::int64_t, std::int64_t> operand_sizes(gemm::Trans t,
                                                    std::int64_t m,
                                                    std::int64_t n,
                                                    std::int64_t k) {
  switch (t) {
    case gemm::Trans::kNN: return {m * k, k * n};
    case gemm::Trans::kTN: return {k * m, k * n};
    case gemm::Trans::kNT: return {m * k, n * k};
  }
  return {0, 0};
}

void expect_gemm_matches(gemm::Trans t, std::int64_t m, std::int64_t n,
                         std::int64_t k, Rng& rng, bool accumulate) {
  const auto [asize, bsize] = operand_sizes(t, m, n, k);
  Tensor a = Tensor::randn(Shape{asize}, rng);
  Tensor b = Tensor::randn(Shape{bsize}, rng);
  Tensor c0 = Tensor::randn(Shape{m * n}, rng);  // pre-existing C contents
  Tensor c_blocked = c0;
  Tensor c_ref = c0;
  gemm::gemm(t, m, n, k, a.data(), b.data(), c_blocked.data(), accumulate);
  gemm::reference::gemm(t, m, n, k, a.data(), b.data(), c_ref.data(),
                        accumulate);
  for (std::int64_t i = 0; i < m * n; ++i) {
    // Relative tolerance with a unit floor: inner products of randn entries
    // can cancel to near zero, where a pure relative bound is meaningless.
    const float tol = kRelTol * (1.0f + std::abs(c_ref[i]));
    ASSERT_NEAR(c_blocked[i], c_ref[i], tol)
        << trans_name(t) << " m=" << m << " n=" << n << " k=" << k
        << " accumulate=" << accumulate << " @" << i;
  }
}

TEST(GemmFuzz, BlockedMatchesReferenceAcrossShapes) {
  Rng rng(0xC0FFEE);
  // Deliberate shape triples: degenerate dims, primes, odd remainders, and
  // exact/off-by-one register-tile (8x16) and cache-block (128/256) edges.
  const std::vector<std::array<std::int64_t, 3>> targeted = {
      {1, 1, 1},    {1, 16, 1},   {8, 16, 4},   {7, 15, 3},   {9, 17, 5},
      {8, 16, 16},  {16, 32, 8},  {13, 29, 31}, {23, 24, 25}, {5, 1, 7},
      {1, 5, 257},  {3, 17, 256}, {2, 16, 255}, {127, 16, 9}, {128, 17, 8},
      {129, 31, 6}, {8, 127, 7},  {8, 128, 7},  {8, 129, 7},  {31, 33, 64},
      {3, 1024, 5}, {2, 1030, 3}, {4, 1033, 9},  // NC-boundary column blocks
  };
  const std::vector<std::int64_t> pool = {1,  2,  3,  5,  7,  8,  9,
                                          13, 15, 16, 17, 24, 31, 32,
                                          33, 47, 63, 64, 65, 96};
  const gemm::Trans variants[] = {gemm::Trans::kNN, gemm::Trans::kTN,
                                  gemm::Trans::kNT};
  std::int64_t triples = 0;
  for (const auto& [m, n, k] : targeted) {
    for (auto t : variants)
      expect_gemm_matches(t, m, n, k, rng, /*accumulate=*/triples % 2 == 0);
    ++triples;
  }
  // Randomized sweep to ~200 triples total, each hitting all three variants.
  while (triples < 200) {
    const auto m = pool[rng.uniform_index(pool.size())];
    const auto n = pool[rng.uniform_index(pool.size())];
    const auto k = pool[rng.uniform_index(pool.size())];
    for (auto t : variants)
      expect_gemm_matches(t, m, n, k, rng, /*accumulate=*/rng.bernoulli(0.5));
    ++triples;
  }
}

// Re-pack a row-major [k, n] matrix into the packed-B sliver layout
// documented on gemm_prepacked_b: value (p, j) at
// packed[(j / kNR) * (k * kNR) + p * kNR + j % kNR], ragged tail zeroed.
// Built from the layout contract, NOT from pack_block_b, so the test pins
// the documented format itself.
std::vector<float> sliver_pack(const float* b, std::int64_t k,
                               std::int64_t n) {
  const auto NR = gemm::kNR;
  const auto slivers = (n + NR - 1) / NR;
  std::vector<float> packed(static_cast<std::size_t>(slivers * k * NR), 0.0f);
  for (std::int64_t p = 0; p < k; ++p)
    for (std::int64_t j = 0; j < n; ++j)
      packed[static_cast<std::size_t>((j / NR) * (k * NR) + p * NR + j % NR)] =
          b[p * n + j];
  return packed;
}

TEST(GemmPrepackedB, BitwiseMatchesGemmKnn) {
  // gemm_prepacked_b must be bit-identical to gemm(kNN) on the unpacked
  // operand — callers that pre-lay-out B (im2col_packed) rely on this to
  // keep batched-vs-serial outputs bitwise equal. Shapes cover ragged n
  // (zero-padded final sliver), n > kNC (several column blocks), k == kKC
  // (the single-panel cap), and m > kMC (several A blocks).
  Rng rng(0xBEEF);
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {8, 64, 72},   {5, 48, 27},  {7, 33, 100},  {1, 1, 1},
      {3, 1040, 9},  {16, 2048, 72}, {130, 16, 256}, {64, 100, 13},
  };
  int idx = 0;
  for (const auto& [m, n, k] : shapes) {
    ASSERT_LE(k, gemm::kKC);
    Tensor a = Tensor::randn(Shape{m * k}, rng);
    Tensor b = Tensor::randn(Shape{k * n}, rng);
    Tensor c0 = Tensor::randn(Shape{m * n}, rng);
    Tensor bias = Tensor::randn(Shape{m}, rng);
    const bool accumulate = idx % 2 == 0;
    gemm::Epilogue ep;  // exercised on every other shape
    if (idx % 3 != 0) {
      ep.bias = bias.data();
      ep.bias_kind = gemm::Epilogue::Bias::kPerRow;
      ep.act = gemm::Epilogue::Act::kRelu;
    }
    Tensor c_plain = c0;
    gemm::gemm(gemm::Trans::kNN, m, n, k, a.data(), b.data(), c_plain.data(),
               accumulate, ep);
    const auto packed = sliver_pack(b.data(), k, n);
    Tensor c_pre = c0;
    gemm::gemm_prepacked_b(m, n, k, a.data(), packed.data(), c_pre.data(),
                           accumulate, ep);
    for (std::int64_t i = 0; i < m * n; ++i)
      ASSERT_EQ(c_pre[i], c_plain[i])
          << "m=" << m << " n=" << n << " k=" << k
          << " accumulate=" << accumulate << " @" << i;
    ++idx;
  }
}

TEST(GemmPrepackedB, PackBlockBEmitsTheDocumentedLayout) {
  // pack_block_b and the documented sliver formula must agree — this ties
  // the internal packing routine to the public gemm_prepacked_b contract
  // (one layout, two producers).
  Rng rng(0xFACE);
  for (const auto& [k, n] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {72, 64}, {27, 48}, {100, 33}, {256, 16}, {13, 1024}}) {
    Tensor b = Tensor::randn(Shape{k * n}, rng);
    const auto expected = sliver_pack(b.data(), k, n);
    std::vector<float> bp(expected.size(), -1.0f);
    gemm::detail::pack_block_b(gemm::Trans::kNN, k, n, b.data(), bp.data(),
                               nullptr);
    for (std::size_t i = 0; i < expected.size(); ++i)
      ASSERT_EQ(bp[i], expected[i]) << "k=" << k << " n=" << n << " @" << i;
  }
}

// The threading contract (DESIGN.md §14): the pool changes WHERE tiles run,
// never what they compute — every thread count must produce output BITWISE
// identical to the serial path, because training-vs-serving parity and the
// golden-reference suites all assume one set of float results.
TEST(GemmParallel, BitwiseIdenticalToSerialAtEveryThreadCount) {
  core::ThreadPool& pool = core::ThreadPool::instance();
  const std::size_t old_size = pool.size();
  Rng rng(0x51CAD);
  // Shapes chosen to exercise the parallel regime (>= the flop threshold),
  // odd M/N tails (partial MR/NR tiles at the grid edge), multiple NC/MC
  // blocks, and a tile grid SMALLER than 8*kChunksPerThread chunks.
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {129, 257, 65},   // odd everything, several MR/NR panels
      {8, 2100, 80},    // single MR panel, many NR panels + NC blocks
      {300, 16, 640},   // many MR panels, single NR panel, k > kKC
      {17, 33, 2048},   // deep k: multiple KC panels accumulate into C
      {64, 64, 256},    // exact tile multiples
  };
  const gemm::Trans variants[] = {gemm::Trans::kNN, gemm::Trans::kTN,
                                  gemm::Trans::kNT};
  for (const auto& [m, n, k] : shapes) {
    for (auto t : variants) {
      const auto [asize, bsize] = operand_sizes(t, m, n, k);
      Tensor a = Tensor::randn(Shape{asize}, rng);
      Tensor b = Tensor::randn(Shape{bsize}, rng);
      Tensor c0 = Tensor::randn(Shape{m * n}, rng);
      gemm::Epilogue ep;
      ep.act = gemm::Epilogue::Act::kRelu;
      pool.set_size(1);
      Tensor c_serial = c0;
      gemm::gemm(t, m, n, k, a.data(), b.data(), c_serial.data(),
                 /*accumulate=*/true, ep);
      for (std::size_t threads : {2u, 3u, 8u}) {
        pool.set_size(threads);
        Tensor c_par = c0;
        gemm::gemm(t, m, n, k, a.data(), b.data(), c_par.data(),
                   /*accumulate=*/true, ep);
        for (std::int64_t i = 0; i < m * n; ++i)
          ASSERT_EQ(c_par[i], c_serial[i])
              << trans_name(t) << " threads=" << threads << " m=" << m
              << " n=" << n << " k=" << k << " @" << i;
      }
      pool.set_size(old_size);
    }
  }
}

TEST(GemmParallel, PrepackedBBitwiseIdenticalAcrossThreadCounts) {
  core::ThreadPool& pool = core::ThreadPool::instance();
  const std::size_t old_size = pool.size();
  Rng rng(0x51CAE);
  const std::int64_t m = 130, n = 1040, k = 72;
  Tensor a = Tensor::randn(Shape{m * k}, rng);
  Tensor b = Tensor::randn(Shape{k * n}, rng);
  const auto packed = sliver_pack(b.data(), k, n);
  pool.set_size(1);
  Tensor c_serial(Shape{m * n});
  gemm::gemm_prepacked_b(m, n, k, a.data(), packed.data(), c_serial.data(),
                         /*accumulate=*/false, gemm::Epilogue{});
  for (std::size_t threads : {2u, 3u, 8u}) {
    pool.set_size(threads);
    Tensor c_par(Shape{m * n});
    gemm::gemm_prepacked_b(m, n, k, a.data(), packed.data(), c_par.data(),
                           /*accumulate=*/false, gemm::Epilogue{});
    for (std::int64_t i = 0; i < m * n; ++i)
      ASSERT_EQ(c_par[i], c_serial[i]) << "threads=" << threads << " @" << i;
  }
  pool.set_size(old_size);
}

TEST(GemmTest, KZeroZeroesOrPreservesC) {
  Rng rng(7);
  Tensor c = Tensor::randn(Shape{12}, rng);
  Tensor keep = c;
  gemm::gemm(gemm::Trans::kNN, 3, 4, 0, nullptr, nullptr, c.data(),
             /*accumulate=*/true);
  for (std::int64_t i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(c[i], keep[i]);
  gemm::gemm(gemm::Trans::kNN, 3, 4, 0, nullptr, nullptr, c.data());
  for (std::int64_t i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(c[i], 0.0f);
}

// The old naive kernels skipped zero A entries, so a zero row times a NaN
// column produced 0 instead of NaN — and matmul_nt disagreed with the other
// two variants. All variants must now propagate NaN identically.
TEST(GemmTest, NanPropagatesThroughZeroOperandsInAllVariants) {
  const std::int64_t m = 9, n = 17, k = 5;  // partial tiles on purpose
  Tensor a = Tensor::zeros(Shape{m, k});
  Tensor b(Shape{k, n});
  b.fill(std::numeric_limits<float>::quiet_NaN());
  Tensor c_nn = ops::matmul(a, b);
  Tensor c_tn = ops::matmul_tn(ops::transpose(a), b);
  Tensor c_nt = ops::matmul_nt(a, ops::transpose(b));
  for (std::int64_t i = 0; i < m * n; ++i) {
    EXPECT_TRUE(std::isnan(c_nn[i])) << "NN @" << i;
    EXPECT_TRUE(std::isnan(c_tn[i])) << "TN @" << i;
    EXPECT_TRUE(std::isnan(c_nt[i])) << "NT @" << i;
  }
}

TEST(GemmTest, SingleNanInAStaysConfinedToItsRow) {
  Rng rng(11);
  const std::int64_t m = 10, n = 20, k = 33;
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  a.at(3, 7) = std::numeric_limits<float>::quiet_NaN();
  Tensor c = ops::matmul(a, b);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      EXPECT_EQ(std::isnan(c.at(i, j)), i == 3) << i << "," << j;
}

// matmul_nt historically accumulated each dot product in double. The blocked
// kernel consciously relaxes this to float32 register tiles over KC-sized
// k-panels (documented in gemm.hpp); this regression test pins how far the
// result may drift from the double-precision reference so a future change
// that degrades accumulation further (e.g. destroying the panel partial
// sums) trips loudly. BYOL MSE losses sit on top of exactly this path.
TEST(GemmTest, NtAccumulationStaysNearDoubleReference) {
  Rng rng(13);
  const std::int64_t m = 4, n = 6, k = 4096;  // long-k stress
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{n, k}, rng);
  Tensor c(Shape{m, n});
  gemm::gemm(gemm::Trans::kNT, m, n, k, a.data(), b.data(), c.data());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk)
        s += static_cast<double>(a.at(i, kk)) * b.at(j, kk);
      // sqrt(k)-scaled bound: fp32 panel accumulation over 4096 randn terms
      // stays orders of magnitude inside this; naive unblocked fp32 with a
      // pathological ordering would not.
      const double tol = 1e-4 * std::sqrt(static_cast<double>(k));
      EXPECT_NEAR(c.at(i, j), s, tol) << i << "," << j;
    }
  }
}

// ops::matmul* are thin wrappers over the blocked kernels; spot-check the
// wiring (shape checks still throw, values match reference).
TEST(GemmTest, OpsWrappersDispatchToBlockedKernels) {
  Rng rng(17);
  Tensor a = Tensor::randn(Shape{21, 37}, rng);
  Tensor b = Tensor::randn(Shape{37, 19}, rng);
  Tensor c = ops::matmul(a, b);
  Tensor c_ref(Shape{21, 19});
  gemm::reference::gemm(gemm::Trans::kNN, 21, 19, 37, a.data(), b.data(),
                        c_ref.data());
  for (std::int64_t i = 0; i < c.numel(); ++i)
    EXPECT_NEAR(c[i], c_ref[i], kRelTol * (1.0f + std::abs(c_ref[i])));
  EXPECT_THROW(ops::matmul(b, b), CheckError);
}

}  // namespace
}  // namespace cq
