// Int8 deployment: symmetric quantization, BN folding, compiled networks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "deploy/int8.hpp"
#include "models/encoder.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "tensor/kernels/igemm.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

float max_rel_err(const Tensor& a, const Tensor& b) {
  CQ_CHECK(a.same_shape(b));
  float scale = 1e-6f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    scale = std::max(scale, std::fabs(a[i]));
  float err = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i)
    err = std::max(err, std::fabs(a[i] - b[i]) / scale);
  return err;
}

TEST(QuantizeSymmetric, RoundTripErrorBounded) {
  Rng rng(1);
  Tensor t = Tensor::randn(Shape{500}, rng);
  const auto q = deploy::quantize_symmetric(t);
  const Tensor back = deploy::dequantize(q);
  for (std::int64_t i = 0; i < t.numel(); ++i)
    EXPECT_LE(std::fabs(t[i] - back[i]), 0.5f * q.scale + 1e-6f);
}

TEST(QuantizeSymmetric, ZeroTensorStaysZero) {
  Tensor t(Shape{10});
  const auto q = deploy::quantize_symmetric(t);
  const Tensor back = deploy::dequantize(q);
  for (std::int64_t i = 0; i < 10; ++i) EXPECT_FLOAT_EQ(back[i], 0.0f);
}

TEST(QuantizeSymmetric, ExtremaMapToPlusMinus127) {
  Tensor t = Tensor::from({-2.0f, 0.0f, 2.0f});
  const auto q = deploy::quantize_symmetric(t);
  EXPECT_EQ(q.data[0], -127);
  EXPECT_EQ(q.data[2], 127);
}

TEST(CompileInt8, ConvMatchesFp32) {
  Rng rng(2);
  nn::Sequential net;
  net.emplace<nn::Conv2d>(
      nn::Conv2dSpec{.in_channels = 3, .out_channels = 8, .kernel = 3,
                     .stride = 1, .pad = 1, .bias = true},
      rng, "c");
  net.set_mode(nn::Mode::kEval);
  Tensor x = Tensor::uniform(Shape{2, 3, 8, 8}, rng, -1.0f, 1.0f);
  const Tensor y_fp = net.forward(x);
  const auto compiled = deploy::compile_int8(net);
  const Tensor y_q = compiled.forward(x);
  EXPECT_LT(max_rel_err(y_fp, y_q), 0.05f);
  EXPECT_GT(compiled.weight_bytes(), 0);
}

TEST(CompileInt8, LinearMatchesFp32) {
  Rng rng(3);
  nn::Sequential net;
  net.emplace<nn::Linear>(10, 6, rng, true, "fc");
  net.set_mode(nn::Mode::kEval);
  Tensor x = Tensor::uniform(Shape{4, 10}, rng, -1.0f, 1.0f);
  const Tensor y_fp = net.forward(x);
  const auto compiled = deploy::compile_int8(net);
  EXPECT_LT(max_rel_err(y_fp, compiled.forward(x)), 0.05f);
}

TEST(CompileInt8, BnFoldingMatchesConvPlusBn) {
  Rng rng(4);
  nn::Sequential net;
  net.emplace<nn::Conv2d>(
      nn::Conv2dSpec{.in_channels = 2, .out_channels = 4, .kernel = 3,
                     .stride = 1, .pad = 1},
      rng, "c");
  auto& bn = net.emplace<nn::BatchNorm2d>(4);
  // Give the BN non-trivial folded parameters.
  net.set_mode(nn::Mode::kTrain);
  for (int i = 0; i < 20; ++i) {
    net.forward(Tensor::randn(Shape{8, 2, 6, 6}, rng, 0.5f, 2.0f));
    net.clear_cache();
  }
  bn.parameters()[0]->value = Tensor::randn(Shape{4}, rng, 1.0f, 0.2f);
  bn.parameters()[1]->value = Tensor::randn(Shape{4}, rng, 0.0f, 0.2f);

  net.set_mode(nn::Mode::kEval);
  Tensor x = Tensor::uniform(Shape{2, 2, 6, 6}, rng, -1.0f, 1.0f);
  const Tensor y_fp = net.forward(x);
  const auto compiled = deploy::compile_int8(net);
  EXPECT_EQ(compiled.op_count(), 1u);  // conv+bn folded into one op
  EXPECT_LT(max_rel_err(y_fp, compiled.forward(x)), 0.08f);
}

TEST(CompileInt8, ReluAndPoolingPreserved) {
  Rng rng(5);
  nn::Sequential net;
  net.emplace<nn::Conv2d>(
      nn::Conv2dSpec{.in_channels = 1, .out_channels = 4, .kernel = 3,
                     .stride = 1, .pad = 1},
      rng, "c");
  net.emplace<nn::ReLU>();
  net.emplace<nn::MaxPool2d>(2, 2);
  net.emplace<nn::GlobalAvgPool>();
  net.set_mode(nn::Mode::kEval);
  Tensor x = Tensor::uniform(Shape{2, 1, 8, 8}, rng, -1.0f, 1.0f);
  const Tensor y_fp = net.forward(x);
  const auto compiled = deploy::compile_int8(net);
  EXPECT_EQ(compiled.op_count(), 4u);
  EXPECT_LT(max_rel_err(y_fp, compiled.forward(x)), 0.05f);
}

TEST(CompileInt8, Relu6CapRecovered) {
  Rng rng(6);
  nn::Sequential net;
  net.emplace<nn::ReLU>(6.0f);
  net.set_mode(nn::Mode::kEval);
  const auto compiled = deploy::compile_int8(net);
  Tensor x = Tensor::from({-1.0f, 3.0f, 100.0f});
  Tensor y = compiled.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
  EXPECT_FLOAT_EQ(y[2], 6.0f);
}

TEST(CompileInt8, FullResNet18PredictionsMatch) {
  Rng rng(7);
  auto enc = models::make_encoder("resnet18", rng);
  // Populate BN running stats so eval mode is meaningful.
  enc.backbone->set_mode(nn::Mode::kTrain);
  for (int i = 0; i < 15; ++i) {
    enc.forward(Tensor::uniform(Shape{8, 3, 16, 16}, rng));
    enc.backbone->clear_cache();
  }
  enc.backbone->set_mode(nn::Mode::kEval);

  Tensor x = Tensor::uniform(Shape{8, 3, 16, 16}, rng);
  const Tensor f_fp = enc.forward(x);
  const auto compiled = deploy::compile_int8(*enc.backbone);
  const Tensor f_q = compiled.forward(x);
  ASSERT_TRUE(f_fp.same_shape(f_q));
  // Feature agreement: cosine similarity per row > 0.98.
  for (std::int64_t r = 0; r < f_fp.dim(0); ++r) {
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::int64_t c = 0; c < f_fp.dim(1); ++c) {
      dot += static_cast<double>(f_fp.at(r, c)) * f_q.at(r, c);
      na += static_cast<double>(f_fp.at(r, c)) * f_fp.at(r, c);
      nb += static_cast<double>(f_q.at(r, c)) * f_q.at(r, c);
    }
    EXPECT_GT(dot / (std::sqrt(na * nb) + 1e-12), 0.98) << "row " << r;
  }
  // Memory win: int8 weights are 1/4 the fp32 parameter bytes (heads
  // aside, the backbone is conv-dominated).
  EXPECT_LT(compiled.weight_bytes(),
            enc.backbone->parameter_count() * 4 / 3);
}

TEST(CompileInt8, BatchedForwardBitwiseEqualsSingleSample) {
  // Activation scales are computed per sample (per image for conv, per row
  // for linear), so a batch of N must be BITWISE identical to N independent
  // single-sample forwards — the property the serving engine's dynamic
  // batcher relies on.
  Rng rng(11);
  auto enc = models::make_encoder("resnet18", rng);
  enc.backbone->set_mode(nn::Mode::kTrain);
  for (int i = 0; i < 10; ++i) {
    enc.forward(Tensor::uniform(Shape{4, 3, 16, 16}, rng));
    enc.backbone->clear_cache();
  }
  enc.backbone->set_mode(nn::Mode::kEval);
  const auto compiled = deploy::compile_int8(*enc.backbone);

  constexpr std::int64_t kN = 5;
  std::vector<Tensor> singles;
  for (std::int64_t i = 0; i < kN; ++i)
    singles.push_back(
        Tensor::uniform(Shape{1, 3, 16, 16}, rng, -1.0f, 1.0f));
  Tensor batch(Shape{kN, 3, 16, 16});
  const auto per = singles[0].numel();
  for (std::int64_t i = 0; i < kN; ++i)
    std::memcpy(batch.data() + i * per, singles[static_cast<std::size_t>(i)].data(),
                static_cast<std::size_t>(per) * sizeof(float));

  const Tensor f_batch = compiled.forward(batch);
  ASSERT_EQ(f_batch.dim(0), kN);
  for (std::int64_t i = 0; i < kN; ++i) {
    const Tensor f_one = compiled.forward(singles[static_cast<std::size_t>(i)]);
    for (std::int64_t c = 0; c < f_batch.dim(1); ++c)
      EXPECT_EQ(f_batch.at(i, c), f_one.at(0, c))
          << "sample " << i << " feature " << c;
  }
}

TEST(CompileInt8, MobileNetV2Compiles) {
  Rng rng(8);
  auto enc = models::make_encoder("mobilenetv2", rng);
  enc.backbone->set_mode(nn::Mode::kTrain);
  for (int i = 0; i < 10; ++i) {
    enc.forward(Tensor::uniform(Shape{4, 3, 16, 16}, rng));
    enc.backbone->clear_cache();
  }
  enc.backbone->set_mode(nn::Mode::kEval);
  Tensor x = Tensor::uniform(Shape{2, 3, 16, 16}, rng);
  const Tensor f_fp = enc.forward(x);
  const auto compiled = deploy::compile_int8(*enc.backbone);
  const Tensor f_q = compiled.forward(x);
  ASSERT_TRUE(f_fp.same_shape(f_q));
  EXPECT_LT(max_rel_err(f_fp, f_q), 0.25f);  // deeper nets accumulate error
}

TEST(Int8Accumulators, WideReductionDoesNotWrapInt16) {
  // All-ones weights and input over in=2048: each int8 product is 127*127
  // and the effective reduction reaches 2048 * 127 * 127 = 33,032,192 —
  // an int16 accumulator (max 32767) would have wrapped ~1000 times over
  // and produced garbage. The near-exact answer pins int32 accumulation in
  // the GEMM core.
  Rng rng(20);
  const std::int64_t in = 2048, out = 3;
  nn::Sequential net;
  auto& fc = net.emplace<nn::Linear>(in, out, rng, false, "fc");
  for (std::int64_t i = 0; i < fc.weight().value.numel(); ++i)
    fc.weight().value[i] = 1.0f;
  net.set_mode(nn::Mode::kEval);
  const auto compiled = deploy::compile_int8(net);
  Tensor x(Shape{1, in});
  for (std::int64_t i = 0; i < in; ++i) x[i] = 1.0f;
  const Tensor y = compiled.forward(x);
  for (std::int64_t r = 0; r < out; ++r)
    EXPECT_NEAR(y.at(0, r), 2048.0f, 0.01f) << "row " << r;
}

TEST(Int8Accumulators, PerChannelScaleEpilogueMatchesMaterializedDequant) {
  // Weight rows spanning five orders of magnitude: a per-TENSOR scale would
  // crush the small rows to zero bits. The compiled op must match the
  // materialized pipeline — dequantize the per-channel int8 weights and the
  // per-sample int8 activations back to fp32, then do an exact (double)
  // GEMM — to float-rounding precision, pinning the epilogue's per-channel
  // scale folding.
  Rng rng(21);
  const std::int64_t in = 32, out = 6, n = 4;
  nn::Sequential net;
  auto& fc = net.emplace<nn::Linear>(in, out, rng, true, "fc");
  Tensor& w = fc.weight().value;
  for (std::int64_t r = 0; r < out; ++r) {
    const float mag = std::pow(10.0f, static_cast<float>(r) - 3.0f);
    for (std::int64_t c = 0; c < in; ++c)
      w.at(r, c) = mag * (0.2f + 0.8f * static_cast<float>((c * 7 + r) % 11) /
                                     10.0f) *
                   ((c + r) % 2 == 0 ? 1.0f : -1.0f);
  }
  net.set_mode(nn::Mode::kEval);
  const auto compiled = deploy::compile_int8(net);
  Tensor x = Tensor::uniform(Shape{n, in}, rng, -1.0f, 1.0f);
  const Tensor y = compiled.forward(x);

  // Materialize: per-output-channel weight quantization (the compiler's
  // round-half-away formula), per-sample activation quantization (the
  // igemm pack formula), dequantize both, exact double GEMM.
  for (std::int64_t i = 0; i < n; ++i) {
    float xmax = 0.0f;
    for (std::int64_t c = 0; c < in; ++c)
      xmax = std::max(xmax, std::fabs(x.at(i, c)));
    const float xscale = std::max(xmax / 127.0f, 1e-12f);
    for (std::int64_t r = 0; r < out; ++r) {
      float wmax = 0.0f;
      for (std::int64_t c = 0; c < in; ++c)
        wmax = std::max(wmax, std::fabs(w.at(r, c)));
      const float wscale = wmax > 0.0f ? wmax / 127.0f : 1.0f;
      double acc = 0.0;
      for (std::int64_t c = 0; c < in; ++c) {
        const double wd =
            static_cast<double>(std::clamp<long>(
                std::lround(w.at(r, c) / wscale), -127L, 127L)) *
            wscale;
        const double xd = static_cast<double>(igemm::detail::quantize_value(
                              x.at(i, c), 1.0f / xscale)) *
                          xscale;
        acc += wd * xd;
      }
      acc += fc.bias()->value[r];
      const float ref = static_cast<float>(acc);
      EXPECT_NEAR(y.at(i, r), ref,
                  1e-4f * std::max(1.0f, std::fabs(ref)))
          << "sample " << i << " channel " << r;
    }
  }
}

TEST(CompileInt8, RejectsUnsupportedModules) {
  Rng rng(9);
  nn::Sequential net;
  net.emplace<nn::BatchNorm2d>(4);  // BN without preceding conv
  EXPECT_THROW(deploy::compile_int8(net), CheckError);
}

}  // namespace
}  // namespace cq
