// Model zoo: shapes, quantization wiring, checkpointing.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

#include "models/encoder.hpp"
#include "models/heads.hpp"
#include "models/mobilenetv2.hpp"
#include "models/resnet.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

TEST(Encoder, KnownArchList) {
  EXPECT_EQ(models::known_archs().size(), 7u);
  EXPECT_TRUE(models::is_known_arch("resnet18"));
  EXPECT_TRUE(models::is_known_arch("mobilenetv2"));
  EXPECT_TRUE(models::is_known_arch("vit"));
  EXPECT_FALSE(models::is_known_arch("vgg16"));
}

TEST(Encoder, UnknownArchThrows) {
  Rng rng(1);
  EXPECT_THROW(models::make_encoder("vgg16", rng), CheckError);
}

TEST(Encoder, AllArchsProduceFeatureVectors) {
  Rng rng(2);
  for (const auto& arch : models::known_archs()) {
    Rng arch_rng = rng.split();
    auto enc = models::make_encoder(arch, arch_rng);
    enc.backbone->set_mode(nn::Mode::kEval);
    Tensor x = Tensor::uniform(Shape{2, 3, 16, 16}, arch_rng);
    Tensor f = enc.forward(x);
    EXPECT_EQ(f.shape(), Shape({2, enc.feature_dim})) << arch;
    EXPECT_GT(enc.feature_dim, 0) << arch;
    // Finite output.
    for (std::int64_t i = 0; i < f.numel(); ++i)
      ASSERT_TRUE(std::isfinite(f[i])) << arch;
  }
}

TEST(Encoder, DepthOrderingOfParameterCounts) {
  Rng rng(3);
  auto r18 = models::make_encoder("resnet18", rng);
  auto r34 = models::make_encoder("resnet34", rng);
  auto r74 = models::make_encoder("resnet74", rng);
  auto r110 = models::make_encoder("resnet110", rng);
  auto r152 = models::make_encoder("resnet152", rng);
  EXPECT_LT(r18.backbone->parameter_count(), r34.backbone->parameter_count());
  EXPECT_LT(r74.backbone->parameter_count(), r110.backbone->parameter_count());
  EXPECT_LT(r110.backbone->parameter_count(),
            r152.backbone->parameter_count());
}

TEST(Encoder, CifarStyleDepthMatchesFamilyFormula) {
  // depth = 6n + 2 -> n blocks per stage.
  EXPECT_EQ(models::resnet74_config().stage_blocks,
            (std::vector<std::int64_t>{12, 12, 12}));
  EXPECT_EQ(models::resnet110_config().stage_blocks,
            (std::vector<std::int64_t>{18, 18, 18}));
  EXPECT_EQ(models::resnet152_config().stage_blocks,
            (std::vector<std::int64_t>{25, 25, 25}));
}

TEST(Encoder, PolicyBitsChangeForwardOutput) {
  Rng rng(4);
  auto enc = models::make_encoder("resnet18", rng);
  enc.backbone->set_mode(nn::Mode::kEval);
  Tensor x = Tensor::uniform(Shape{1, 3, 16, 16}, rng);
  enc.policy->set_full_precision();
  Tensor f_fp = enc.forward(x);
  enc.policy->set_bits(2);
  Tensor f_q = enc.forward(x);
  float diff = 0.0f;
  for (std::int64_t i = 0; i < f_fp.numel(); ++i)
    diff += std::abs(f_fp[i] - f_q[i]);
  EXPECT_GT(diff, 1e-4f);
}

TEST(Encoder, HighBitsCloseToFullPrecision) {
  Rng rng(5);
  auto enc = models::make_encoder("resnet18", rng);
  enc.backbone->set_mode(nn::Mode::kEval);
  Tensor x = Tensor::uniform(Shape{1, 3, 16, 16}, rng);
  Tensor f_fp = enc.forward(x);
  enc.policy->set_bits(16);
  Tensor f_16 = enc.forward(x);
  enc.policy->set_bits(2);
  Tensor f_2 = enc.forward(x);
  enc.policy->set_full_precision();
  float d16 = 0.0f, d2 = 0.0f;
  for (std::int64_t i = 0; i < f_fp.numel(); ++i) {
    d16 += std::abs(f_fp[i] - f_16[i]);
    d2 += std::abs(f_fp[i] - f_2[i]);
  }
  EXPECT_LT(d16, d2);
}

TEST(Encoder, ForwardAtRestoresPreviousBits) {
  Rng rng(6);
  auto enc = models::make_encoder("resnet18", rng);
  enc.backbone->set_mode(nn::Mode::kEval);
  enc.policy->set_bits(7);
  Tensor x = Tensor::uniform(Shape{1, 3, 16, 16}, rng);
  enc.forward_at(x, 4);
  EXPECT_EQ(enc.policy->bits(), 7);
}

TEST(Encoder, MobileNetUsesDepthwiseGroups) {
  // Structure check via parameter count: MobileNetV2 should be far cheaper
  // than a dense conv net of similar channel counts would be.
  Rng rng(7);
  auto mnv2 = models::make_encoder("mobilenetv2", rng);
  EXPECT_LT(mnv2.backbone->parameter_count(), 20000);
  EXPECT_GT(mnv2.backbone->parameter_count(), 1000);
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  Rng rng(8);
  auto enc = models::make_encoder("resnet18", rng);
  const std::string path = "test_ckpt_r18.ckpt";
  models::save_module(path, *enc.backbone);

  Rng rng2(99);  // different init
  auto enc2 = models::make_encoder("resnet18", rng2);
  models::load_module(path, *enc2.backbone);

  enc.backbone->set_mode(nn::Mode::kEval);
  enc2.backbone->set_mode(nn::Mode::kEval);
  Tensor x = Tensor::uniform(Shape{1, 3, 16, 16}, rng);
  Tensor f1 = enc.forward(x);
  Tensor f2 = enc2.forward(x);
  for (std::int64_t i = 0; i < f1.numel(); ++i)
    EXPECT_FLOAT_EQ(f1[i], f2[i]);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsTrailingGarbage) {
  // load_module validates expect_eof(): a checkpoint with extra bytes after
  // the last parameter (format drift, concatenated files) must not load.
  Rng rng(8);
  auto enc = models::make_encoder("resnet18", rng);
  const std::string path = "test_ckpt_tail.ckpt";
  models::save_module(path, *enc.backbone);
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "junk";
  }
  auto enc2 = models::make_encoder("resnet18", rng);
  EXPECT_THROW(models::load_module(path, *enc2.backbone), CheckError);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsArchMismatch) {
  Rng rng(9);
  auto r18 = models::make_encoder("resnet18", rng);
  const std::string path = "test_ckpt_mismatch.ckpt";
  models::save_module(path, *r18.backbone);
  auto r34 = models::make_encoder("resnet34", rng);
  EXPECT_THROW(models::load_module(path, *r34.backbone), CheckError);
  std::filesystem::remove(path);
}

TEST(Checkpoint, ClassificationWeightsLoadIntoDetectionTrunk) {
  // GAP carries no parameters, so a checkpoint from the pooled backbone
  // loads into the spatial trunk (Table 3 transfer path).
  Rng rng(10);
  auto enc = models::make_encoder("resnet18", rng);
  const std::string path = "test_ckpt_trunk.ckpt";
  models::save_module(path, *enc.backbone);

  Rng rng2(123);
  auto policy = std::make_shared<quant::QuantPolicy>();
  std::int64_t trunk_dim = 0;
  auto trunk = models::build_resnet(models::resnet18_config(), policy, rng2,
                                    &trunk_dim, /*include_gap=*/false);
  EXPECT_NO_THROW(models::load_module(path, *trunk));
  EXPECT_EQ(trunk_dim, enc.feature_dim);

  trunk->set_mode(nn::Mode::kEval);
  Tensor x = Tensor::uniform(Shape{1, 3, 16, 16}, rng);
  Tensor fmap = trunk->forward(x);
  EXPECT_EQ(fmap.shape().rank(), 4u);
  EXPECT_EQ(fmap.dim(1), trunk_dim);
  std::filesystem::remove(path);
}

TEST(Heads, ProjectionHeadShape) {
  Rng rng(11);
  auto head = models::make_projection_head(64, 32, 16, rng);
  Tensor x = Tensor::randn(Shape{4, 64}, rng);
  EXPECT_EQ(head->forward(x).shape(), Shape({4, 16}));
}

TEST(Heads, ByolMlpShapeAndBn) {
  Rng rng(12);
  auto head = models::make_byol_mlp(16, 32, 8, rng);
  Tensor x = Tensor::randn(Shape{4, 16}, rng);
  EXPECT_EQ(head->forward(x).shape(), Shape({4, 8}));
  // Contains BN buffers.
  std::vector<Tensor*> buffers;
  head->collect_buffers(buffers);
  EXPECT_EQ(buffers.size(), 2u);
}

TEST(Heads, ClassifierShape) {
  Rng rng(13);
  auto head = models::make_classifier(10, 7, rng);
  Tensor x = Tensor::randn(Shape{3, 10}, rng);
  EXPECT_EQ(head->forward(x).shape(), Shape({3, 7}));
}

TEST(Models, TrainForwardBackwardAllArchs) {
  // Smoke test: one forward + backward at 4-bit through every architecture.
  Rng rng(14);
  for (const auto& arch : models::known_archs()) {
    // Deep CIFAR nets are slow; use the two family representatives + mnv2.
    if (arch == "resnet110" || arch == "resnet152" || arch == "resnet34")
      continue;
    Rng arch_rng = rng.split();
    auto enc = models::make_encoder(arch, arch_rng);
    enc.policy->set_bits(4);
    Tensor x = Tensor::uniform(Shape{2, 3, 16, 16}, arch_rng);
    Tensor f = enc.forward(x);
    Tensor g = enc.backbone->backward(Tensor::ones(f.shape()));
    EXPECT_EQ(g.shape(), x.shape()) << arch;
    // Gradients reached the stem.
    float gnorm = 0.0f;
    for (nn::Parameter* p : enc.backbone->parameters())
      gnorm += ops::norm(p->grad);
    EXPECT_GT(gnorm, 0.0f) << arch;
  }
}

}  // namespace
}  // namespace cq
