// The SIMD kernel layer's three contracts (DESIGN.md Sec. 9), fuzzed:
//
//  1. Backend determinism — kernels::foo and kernels::scalar::foo are
//     BIT-identical for every kernel, including odd tail lengths. On an AVX2
//     build this pins the vector path to the portable 8-lane emulation; on a
//     scalar build (CQ_SCALAR_KERNELS) it is trivially true, so the same
//     binary asserts the contract on whichever backend it got.
//  2. Fused epilogues — gemm with a bias/activation epilogue is BIT-identical
//     to gemm, then a bias pass, then an activation pass.
//  3. Quantize-on-pack — gemm with a QuantSpec on either operand is
//     BIT-identical to kernels::quantize into a temp, then plain gemm.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <utility>
#include <vector>

#include "quant/quantizer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/tensor.hpp"

namespace cq {
namespace {

// Lengths that exercise full vector chunks, partial tails, and empties.
const std::vector<std::int64_t> kLens = {0, 1, 3, 7, 8, 9, 15, 16,
                                         17, 31, 33, 64, 100, 1011};

void expect_bits_equal(const float* a, const float* b, std::int64_t n,
                       const char* what) {
  for (std::int64_t i = 0; i < n; ++i)
    ASSERT_EQ(std::bit_cast<std::uint32_t>(a[i]),
              std::bit_cast<std::uint32_t>(b[i]))
        << what << " differs at " << i << ": " << a[i] << " vs " << b[i];
}

Tensor fuzz_values(std::int64_t n, Rng& rng) {
  Tensor x = Tensor::randn(Shape{std::max<std::int64_t>(n, 1)}, rng);
  float* p = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    if (rng.bernoulli(0.05)) p[i] = 0.0f;        // exact zeros
    if (rng.bernoulli(0.05)) p[i] *= 100.0f;     // large magnitudes
    if (rng.bernoulli(0.05)) p[i] *= 1e-6f;      // denormal-adjacent
  }
  return x;
}

// ---- 1. backend-vs-portable bitwise equality -------------------------------

TEST(KernelBackend, ReportsWidthAndName) {
  EXPECT_EQ(kernels::simd_width(), 8);
  const std::string b = kernels::backend();
  EXPECT_TRUE(b == "avx2" || b == "scalar") << b;
}

TEST(KernelBackendFuzz, ElementwiseBitIdentical) {
  Rng rng(0xABC1);
  for (auto n : kLens) {
    Tensor x = fuzz_values(n, rng), g = fuzz_values(n, rng);
    Tensor a(Shape{std::max<std::int64_t>(n, 1)}), b = a;
    kernels::vexp(x.data(), a.data(), n);
    kernels::scalar::vexp(x.data(), b.data(), n);
    expect_bits_equal(a.data(), b.data(), n, "vexp");
    kernels::relu(x.data(), a.data(), n);
    kernels::scalar::relu(x.data(), b.data(), n);
    expect_bits_equal(a.data(), b.data(), n, "relu");
    kernels::relu_cap(x.data(), a.data(), n, 6.0f);
    kernels::scalar::relu_cap(x.data(), b.data(), n, 6.0f);
    expect_bits_equal(a.data(), b.data(), n, "relu_cap");
    kernels::relu_grad(x.data(), g.data(), a.data(), n);
    kernels::scalar::relu_grad(x.data(), g.data(), b.data(), n);
    expect_bits_equal(a.data(), b.data(), n, "relu_grad");
    kernels::relu_cap_grad(x.data(), g.data(), a.data(), n, 6.0f);
    kernels::scalar::relu_cap_grad(x.data(), g.data(), b.data(), n, 6.0f);
    expect_bits_equal(a.data(), b.data(), n, "relu_cap_grad");
  }
}

TEST(KernelBackendFuzz, ReductionsBitIdentical) {
  Rng rng(0xABC2);
  for (auto n : kLens) {
    Tensor x = fuzz_values(n, rng);
    float lo1, hi1, lo2, hi2;
    kernels::minmax(x.data(), n, &lo1, &hi1);
    kernels::scalar::minmax(x.data(), n, &lo2, &hi2);
    expect_bits_equal(&lo1, &lo2, 1, "minmax.lo");
    expect_bits_equal(&hi1, &hi2, 1, "minmax.hi");
    const float s1 = kernels::sum(x.data(), n);
    const float s2 = kernels::scalar::sum(x.data(), n);
    expect_bits_equal(&s1, &s2, 1, "sum");
  }
}

TEST(KernelBackendFuzz, RowKernelsBitIdentical) {
  Rng rng(0xABC3);
  for (std::int64_t rows : {1, 2, 5}) {
    for (std::int64_t cols : {1, 7, 8, 17, 64, 100}) {
      Tensor x0 = fuzz_values(rows * cols, rng);
      Tensor a = x0, b = x0;  // COW copies, detached by data()
      Tensor ra(Shape{rows}), rb(Shape{rows});
      kernels::row_sum(x0.data(), rows, cols, ra.data());
      kernels::scalar::row_sum(x0.data(), rows, cols, rb.data());
      expect_bits_equal(ra.data(), rb.data(), rows, "row_sum");
      kernels::softmax_rows(a.data(), rows, cols);
      kernels::scalar::softmax_rows(b.data(), rows, cols);
      expect_bits_equal(a.data(), b.data(), rows * cols, "softmax_rows");
      a = x0;
      b = x0;
      kernels::log_softmax_rows(a.data(), rows, cols);
      kernels::scalar::log_softmax_rows(b.data(), rows, cols);
      expect_bits_equal(a.data(), b.data(), rows * cols, "log_softmax_rows");
      a = x0;
      b = x0;
      kernels::l2_normalize_rows(a.data(), rows, cols, ra.data(), 1e-12f);
      kernels::scalar::l2_normalize_rows(b.data(), rows, cols, rb.data(),
                                         1e-12f);
      expect_bits_equal(a.data(), b.data(), rows * cols, "l2_normalize_rows");
      expect_bits_equal(ra.data(), rb.data(), rows, "l2 norms");
      Tensor ga(Shape{rows * cols}), gb(Shape{rows * cols});
      ga.fill(0.5f);
      gb.fill(0.5f);
      kernels::add_rows(x0.data(), rows, cols, ga.data());
      kernels::scalar::add_rows(x0.data(), rows, cols, gb.data());
      expect_bits_equal(ga.data(), gb.data(), cols, "add_rows");
    }
  }
}

TEST(KernelBackendFuzz, QuantizeAndUpdatesBitIdentical) {
  Rng rng(0xABC4);
  const quant::LinearQuantizer quantizer;
  for (auto n : kLens) {
    Tensor x = fuzz_values(n, rng), g = fuzz_values(n, rng);
    const gemm::QuantSpec q = quantizer.make_spec(x, 4);
    Tensor a(Shape{std::max<std::int64_t>(n, 1)}), b = a;
    kernels::quantize(x.data(), a.data(), n, q);
    kernels::scalar::quantize(x.data(), b.data(), n, q);
    expect_bits_equal(a.data(), b.data(), n, "quantize");
    std::vector<std::uint8_t> ma(n + 1, 7), mb(n + 1, 7);
    gemm::QuantSpec qc = q;
    qc.clip = true;  // force the clip-mask path
    qc.lo = -0.5f;
    qc.hi = 0.75f;
    kernels::quantize_masked(x.data(), a.data(), n, qc, ma.data());
    kernels::scalar::quantize_masked(x.data(), b.data(), n, qc, mb.data());
    expect_bits_equal(a.data(), b.data(), n, "quantize_masked");
    for (std::int64_t i = 0; i < n; ++i)
      ASSERT_EQ(ma[i], mb[i]) << "clip mask differs at " << i;

    Tensor p1 = fuzz_values(n, rng), p2 = p1;
    Tensor v1 = fuzz_values(n, rng), v2 = v1;
    kernels::sgd_update(p1.data(), g.data(), v1.data(), n, 0.1f, 0.9f, 1e-4f,
                        0.5f);
    kernels::scalar::sgd_update(p2.data(), g.data(), v2.data(), n, 0.1f, 0.9f,
                                1e-4f, 0.5f);
    expect_bits_equal(p1.data(), p2.data(), n, "sgd p");
    expect_bits_equal(v1.data(), v2.data(), n, "sgd v");

    Tensor m1 = fuzz_values(n, rng), m2 = m1;
    Tensor w1 = fuzz_values(n, rng), w2 = w1;
    Tensor s1 = p1, s2 = p1;
    // Second-moment buffers must be non-negative for sqrt.
    for (std::int64_t i = 0; i < n; ++i) w1.data()[i] = std::abs(w1[i]);
    w2 = w1;
    kernels::adam_update(s1.data(), g.data(), m1.data(), w1.data(), n, 1e-3f,
                         0.9f, 0.999f, 1e-8f, 1e-2f, 0.271f, 0.00995f);
    kernels::scalar::adam_update(s2.data(), g.data(), m2.data(), w2.data(), n,
                                 1e-3f, 0.9f, 0.999f, 1e-8f, 1e-2f, 0.271f,
                                 0.00995f);
    expect_bits_equal(s1.data(), s2.data(), n, "adam p");
    expect_bits_equal(m1.data(), m2.data(), n, "adam m");
    expect_bits_equal(w1.data(), w2.data(), n, "adam v");
  }
}

// ---- kernel semantics against simple references ----------------------------

TEST(KernelSemantics, VexpTracksStdExpWithinTwoUlp) {
  Rng rng(0xE);
  const std::int64_t n = 10000;
  Tensor x(Shape{n}), y(Shape{n});
  // Sweep the full finite-exp input range plus a margin past the clamps.
  for (std::int64_t i = 0; i < n; ++i)
    x.data()[i] = -95.0f + 190.0f * float(i) / float(n - 1);
  kernels::vexp(x.data(), y.data(), n);
  for (std::int64_t i = 0; i < n; ++i) {
    const double want = std::exp(static_cast<double>(x[i]));
    if (x[i] >= -87.0f && x[i] <= 87.0f) {
      EXPECT_NEAR(y[i], want, 5e-7 * want) << "x=" << x[i];
    } else {
      EXPECT_TRUE(std::isfinite(y[i])) << "x=" << x[i];  // clamped, no inf
      EXPECT_GE(y[i], 0.0f);
    }
  }
  // The substrate's own exactness pin: exp(0) == 1 bitwise.
  const float zero = 0.0f;
  float one;
  kernels::vexp(&zero, &one, 1);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(one),
            std::bit_cast<std::uint32_t>(1.0f));
}

TEST(KernelSemantics, ReluFamilyMatchesScalarDefinitions) {
  Rng rng(0xF);
  const std::int64_t n = 257;
  Tensor x = fuzz_values(n, rng), g = fuzz_values(n, rng);
  Tensor y(Shape{n});
  kernels::relu(x.data(), y.data(), n);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(y[i], x[i] > 0.0f ? x[i] : 0.0f);
  kernels::relu_cap(x.data(), y.data(), n, 0.8f);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(y[i], x[i] < 0.0f ? 0.0f : (x[i] > 0.8f ? 0.8f : x[i]));
  kernels::relu_grad(x.data(), g.data(), y.data(), n);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(y[i], x[i] > 0.0f ? g[i] : 0.0f);
  kernels::relu_cap_grad(x.data(), g.data(), y.data(), n, 0.8f);
  for (std::int64_t i = 0; i < n; ++i)
    EXPECT_FLOAT_EQ(y[i], x[i] > 0.0f && x[i] < 0.8f ? g[i] : 0.0f);
}

TEST(KernelSemantics, ReductionsMatchSequentialReferences) {
  Rng rng(0x10);
  for (auto n : kLens) {
    Tensor x = fuzz_values(n, rng);
    float lo, hi;
    kernels::minmax(x.data(), n, &lo, &hi);
    if (n == 0) {
      EXPECT_FLOAT_EQ(lo, 0.0f);
      EXPECT_FLOAT_EQ(hi, 0.0f);
      continue;
    }
    float slo = x[0], shi = x[0];
    double dsum = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      slo = std::min(slo, x[i]);
      shi = std::max(shi, x[i]);
      dsum += x[i];
    }
    // min/max are order-independent: exact. sum reassociates: tolerance.
    EXPECT_FLOAT_EQ(lo, slo);
    EXPECT_FLOAT_EQ(hi, shi);
    EXPECT_NEAR(kernels::sum(x.data(), n), dsum,
                1e-5 * (1.0 + std::abs(dsum)));
  }
}

TEST(KernelSemantics, SoftmaxRowsNormalizesAndLogSoftmaxAgrees) {
  Rng rng(0x11);
  const std::int64_t rows = 5, cols = 37;
  Tensor x0 = fuzz_values(rows * cols, rng);
  Tensor sm = x0, lsm = x0;
  kernels::softmax_rows(sm.data(), rows, cols);
  kernels::log_softmax_rows(lsm.data(), rows, cols);
  for (std::int64_t r = 0; r < rows; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float p = sm[r * cols + c];
      EXPECT_GE(p, 0.0f);
      s += p;
      // log(softmax) only agrees with log_softmax where exp didn't hit its
      // underflow clamp (x - max < -87 saturates p but not the log form).
      if (lsm[r * cols + c] > -80.0f) {
        EXPECT_NEAR(std::log(p), lsm[r * cols + c], 1e-4);
      }
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(KernelSemantics, L2NormalizeSkipsTinyRowsAndReportsNorms) {
  const std::int64_t rows = 2, cols = 5;
  Tensor x(Shape{rows, cols});
  x.fill(0.0f);
  for (std::int64_t c = 0; c < cols; ++c) x.at(0, c) = 3.0f;
  Tensor norms(Shape{rows});
  kernels::l2_normalize_rows(x.data(), rows, cols, norms.data(), 1e-12f);
  EXPECT_NEAR(norms[0], 3.0f * std::sqrt(5.0f), 1e-4);
  EXPECT_FLOAT_EQ(norms[1], 0.0f);
  for (std::int64_t c = 0; c < cols; ++c) {
    EXPECT_NEAR(x.at(0, c), 1.0f / std::sqrt(5.0f), 1e-6);
    EXPECT_FLOAT_EQ(x.at(1, c), 0.0f);  // norm <= eps row left unchanged
  }
}

TEST(KernelSemantics, QuantizeAliasingInPlaceMatchesOutOfPlace) {
  Rng rng(0x12);
  const std::int64_t n = 101;
  Tensor x = fuzz_values(n, rng);
  gemm::QuantSpec q = quant::LinearQuantizer().make_spec(x, 3);
  q.clip = true;
  q.lo = -1.0f;
  q.hi = 1.0f;
  Tensor out(Shape{n});
  std::vector<std::uint8_t> m1(n), m2(n);
  kernels::quantize_masked(x.data(), out.data(), n, q, m1.data());
  Tensor inplace = x;
  kernels::quantize_masked(inplace.data(), inplace.data(), n, q, m2.data());
  expect_bits_equal(out.data(), inplace.data(), n, "aliased quantize_masked");
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(m1[i], m2[i]);
    EXPECT_EQ(m1[i], x[i] >= q.lo && x[i] <= q.hi ? 1 : 0) << "mask @" << i;
  }
}

// ---- 2. fused epilogue == unfused passes, bitwise --------------------------

std::pair<std::int64_t, std::int64_t> operand_sizes(gemm::Trans t,
                                                    std::int64_t m,
                                                    std::int64_t n,
                                                    std::int64_t k) {
  switch (t) {
    case gemm::Trans::kNN: return {m * k, k * n};
    case gemm::Trans::kTN: return {k * m, k * n};
    case gemm::Trans::kNT: return {m * k, n * k};
  }
  return {0, 0};
}

void apply_unfused(float* c, std::int64_t m, std::int64_t n,
                   const gemm::Epilogue& ep) {
  if (ep.bias_kind == gemm::Epilogue::Bias::kPerRow)
    for (std::int64_t r = 0; r < m; ++r)
      for (std::int64_t j = 0; j < n; ++j) c[r * n + j] += ep.bias[r];
  else if (ep.bias_kind == gemm::Epilogue::Bias::kPerCol)
    for (std::int64_t r = 0; r < m; ++r)
      for (std::int64_t j = 0; j < n; ++j) c[r * n + j] += ep.bias[j];
  if (ep.act == gemm::Epilogue::Act::kRelu)
    for (std::int64_t i = 0; i < m * n; ++i)
      c[i] = c[i] > 0.0f ? c[i] : 0.0f;
  else if (ep.act == gemm::Epilogue::Act::kReluCap)
    for (std::int64_t i = 0; i < m * n; ++i)
      c[i] = c[i] < 0.0f ? 0.0f : (c[i] > ep.cap ? ep.cap : c[i]);
}

TEST(FusedEpilogueFuzz, BitIdenticalToSeparatePasses) {
  Rng rng(0xEA1);
  const gemm::Trans variants[] = {gemm::Trans::kNN, gemm::Trans::kTN,
                                  gemm::Trans::kNT};
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {1, 1, 1},  {7, 15, 3},  {8, 16, 16},  {9, 17, 5},
      {13, 29, 31}, {128, 17, 8}, {8, 129, 7}, {3, 1024, 300},
      {130, 40, 257},  // multiple MC and KC panels
  };
  for (const auto& [m, n, k] : shapes) {
    for (auto t : variants) {
      const auto [asize, bsize] = operand_sizes(t, m, n, k);
      Tensor a = Tensor::randn(Shape{asize}, rng);
      Tensor b = Tensor::randn(Shape{bsize}, rng);
      Tensor rbias = Tensor::randn(Shape{m}, rng);
      Tensor cbias = Tensor::randn(Shape{n}, rng);
      for (int bias = 0; bias < 3; ++bias) {
        for (int act = 0; act < 3; ++act) {
          for (bool accumulate : {false, true}) {
            gemm::Epilogue ep;
            ep.bias_kind = static_cast<gemm::Epilogue::Bias>(bias);
            if (ep.bias_kind == gemm::Epilogue::Bias::kPerRow)
              ep.bias = rbias.data();
            else if (ep.bias_kind == gemm::Epilogue::Bias::kPerCol)
              ep.bias = cbias.data();
            ep.act = static_cast<gemm::Epilogue::Act>(act);
            ep.cap = 0.9f;
            Tensor c0 = Tensor::randn(Shape{m * n}, rng);
            Tensor fused = c0, unfused = c0;
            gemm::gemm(t, m, n, k, a.data(), b.data(), fused.data(),
                       accumulate, ep);
            gemm::gemm(t, m, n, k, a.data(), b.data(), unfused.data(),
                       accumulate);
            apply_unfused(unfused.data(), m, n, ep);
            ASSERT_EQ(std::memcmp(std::as_const(fused).data(),
                                  std::as_const(unfused).data(),
                                  std::size_t(m * n) * sizeof(float)),
                      0)
                << "trans=" << int(t) << " m=" << m << " n=" << n
                << " k=" << k << " bias=" << bias << " act=" << act
                << " accumulate=" << accumulate;
          }
        }
      }
    }
  }
}

TEST(FusedEpilogue, AppliedToEmptySumWhenKZero) {
  Tensor c(Shape{6});
  c.fill(-2.0f);
  Tensor bias(Shape{3});
  bias.fill(0.25f);
  gemm::Epilogue ep;
  ep.bias = bias.data();
  ep.bias_kind = gemm::Epilogue::Bias::kPerCol;
  ep.act = gemm::Epilogue::Act::kRelu;
  // Overwrite: C = relu(0 + bias).
  gemm::gemm(gemm::Trans::kNN, 2, 3, 0, nullptr, nullptr, c.data(), false,
             ep);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(c[i], 0.25f);
  // Accumulate: C = relu(C + bias) = relu(0.25 + 0.25).
  gemm::gemm(gemm::Trans::kNN, 2, 3, 0, nullptr, nullptr, c.data(), true, ep);
  for (std::int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(c[i], 0.5f);
}

TEST(FusedEpilogue, MatchesReferenceWithinTolerance) {
  Rng rng(0xEA2);
  const std::int64_t m = 23, n = 31, k = 57;
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor bias = Tensor::randn(Shape{n}, rng);
  gemm::Epilogue ep;
  ep.bias = bias.data();
  ep.bias_kind = gemm::Epilogue::Bias::kPerCol;
  ep.act = gemm::Epilogue::Act::kRelu;
  Tensor c(Shape{m * n}), ref(Shape{m * n});
  gemm::gemm(gemm::Trans::kNN, m, n, k, a.data(), b.data(), c.data(), false,
             ep);
  gemm::reference::gemm(gemm::Trans::kNN, m, n, k, a.data(), b.data(),
                        ref.data());
  apply_unfused(ref.data(), m, n, ep);
  for (std::int64_t i = 0; i < m * n; ++i)
    EXPECT_NEAR(c[i], ref[i], 1e-4f * (1.0f + std::abs(ref[i])));
}

// ---- 3. quantize-on-pack == materialize-then-gemm, bitwise -----------------

TEST(QuantizeOnPackFuzz, BitIdenticalToMaterializedOperands) {
  Rng rng(0xAB);
  const quant::LinearQuantizer quantizer;
  const gemm::Trans variants[] = {gemm::Trans::kNN, gemm::Trans::kTN,
                                  gemm::Trans::kNT};
  const std::vector<std::array<std::int64_t, 3>> shapes = {
      {1, 1, 1}, {7, 15, 3}, {9, 17, 5}, {13, 29, 31},
      {8, 129, 7}, {130, 40, 257}, {3, 1024, 9},
  };
  for (const auto& [m, n, k] : shapes) {
    for (auto t : variants) {
      const auto [asize, bsize] = operand_sizes(t, m, n, k);
      Tensor a = Tensor::randn(Shape{asize}, rng);
      Tensor b = Tensor::randn(Shape{bsize}, rng);
      for (int which = 0; which < 3; ++which) {  // quantize A, B, or both
        gemm::QuantSpec qa = quantizer.make_spec(a, 3 + which);
        gemm::QuantSpec qb = quantizer.make_spec(b, 4);
        if (which == 2) {  // floor + clip flavors on the "both" pass
          qa.nearest = false;
          qb.clip = true;
          qb.lo = -0.7f;
          qb.hi = 0.9f;
        }
        const bool use_a = which != 1, use_b = which != 0;
        Tensor aq = Tensor::empty(Shape{asize});
        Tensor bq = Tensor::empty(Shape{bsize});
        kernels::quantize(a.data(), aq.data(), asize, qa);
        kernels::quantize(b.data(), bq.data(), bsize, qb);
        Tensor fused(Shape{m * n}), mat(Shape{m * n});
        gemm::gemm(t, m, n, k, a.data(), b.data(), fused.data(), false,
                   gemm::Epilogue{}, use_a ? &qa : nullptr,
                   use_b ? &qb : nullptr);
        gemm::gemm(t, m, n, k, use_a ? aq.data() : a.data(),
                   use_b ? bq.data() : b.data(), mat.data());
        expect_bits_equal(std::as_const(fused).data(),
                          std::as_const(mat).data(), m * n,
                          "quantize-on-pack");
      }
    }
  }
}

TEST(QuantizeOnPack, IdentitySpecPacksRawValues) {
  Rng rng(0xAC);
  const std::int64_t m = 9, n = 17, k = 11;
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  gemm::QuantSpec identity;  // default-constructed: identity == true
  Tensor c1(Shape{m * n}), c2(Shape{m * n});
  gemm::gemm(gemm::Trans::kNN, m, n, k, a.data(), b.data(), c1.data(), false,
             gemm::Epilogue{}, &identity, &identity);
  gemm::gemm(gemm::Trans::kNN, m, n, k, a.data(), b.data(), c2.data());
  expect_bits_equal(c1.data(), c2.data(), m * n, "identity spec");
}

TEST(QuantizeOnPack, PackBlockHelpersFoldTheSpec) {
  Rng rng(0xAD);
  const std::int64_t m = 13, n = 37, k = 21;
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  const gemm::QuantSpec qa = quant::LinearQuantizer().make_spec(a, 4);
  const gemm::QuantSpec qb = quant::LinearQuantizer().make_spec(b, 5);
  Tensor aq = Tensor::empty(Shape{m * k}), bq = Tensor::empty(Shape{k * n});
  kernels::quantize(a.data(), aq.data(), m * k, qa);
  kernels::quantize(b.data(), bq.data(), k * n, qb);
  const std::int64_t mr = (m + gemm::kMR - 1) / gemm::kMR * gemm::kMR;
  const std::int64_t nr = (n + gemm::kNR - 1) / gemm::kNR * gemm::kNR;
  std::vector<float> p1(mr * k), p2(mr * k);
  gemm::detail::pack_block_a(gemm::Trans::kNN, m, k, a.data(), p1.data(),
                             &qa);
  gemm::detail::pack_block_a(gemm::Trans::kNN, m, k, aq.data(), p2.data(),
                             nullptr);
  expect_bits_equal(p1.data(), p2.data(), mr * k, "pack_block_a");
  std::vector<float> p3(nr * k), p4(nr * k);
  gemm::detail::pack_block_b(gemm::Trans::kNN, k, n, b.data(), p3.data(),
                             &qb);
  gemm::detail::pack_block_b(gemm::Trans::kNN, k, n, bq.data(), p4.data(),
                             nullptr);
  expect_bits_equal(p3.data(), p4.data(), nr * k, "pack_block_b");
}

}  // namespace
}  // namespace cq
