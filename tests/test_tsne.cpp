// t-SNE embedding quality and separability metrics.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/separability.hpp"
#include "eval/tsne.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

// Two well-separated Gaussian blobs in 10-D.
struct Blobs {
  Tensor points;
  std::vector<int> labels;
};

Blobs two_blobs(std::int64_t per_class, float separation, Rng& rng) {
  Blobs b;
  b.points = Tensor(Shape{2 * per_class, 10});
  for (std::int64_t i = 0; i < 2 * per_class; ++i) {
    const int label = i < per_class ? 0 : 1;
    b.labels.push_back(label);
    for (std::int64_t d = 0; d < 10; ++d)
      b.points.at(i, d) = static_cast<float>(
          rng.normal(label == 0 ? 0.0 : separation, 1.0));
  }
  return b;
}

TEST(Tsne, OutputShapeAndCentering) {
  Rng rng(1);
  const auto b = two_blobs(30, 5.0f, rng);
  eval::TsneConfig cfg;
  cfg.iterations = 120;
  Tensor y = eval::tsne(b.points, cfg);
  EXPECT_EQ(y.shape(), Shape({60, 2}));
  double mx = 0.0, my = 0.0;
  for (std::int64_t i = 0; i < 60; ++i) {
    mx += y.at(i, 0);
    my += y.at(i, 1);
  }
  EXPECT_NEAR(mx / 60.0, 0.0, 1e-3);
  EXPECT_NEAR(my / 60.0, 0.0, 1e-3);
  for (std::int64_t i = 0; i < y.numel(); ++i)
    ASSERT_TRUE(std::isfinite(y[i]));
}

TEST(Tsne, SeparatesWellSeparatedClusters) {
  Rng rng(2);
  const auto b = two_blobs(25, 10.0f, rng);
  Tensor y = eval::tsne(b.points);
  // The 2-D embedding should keep the clusters apart.
  EXPECT_GT(eval::silhouette_score(y, b.labels), 0.4f);
  EXPECT_GT(eval::knn_accuracy(y, b.labels, 5), 95.0f);
}

TEST(Tsne, DeterministicGivenSeed) {
  Rng rng(3);
  const auto b = two_blobs(15, 5.0f, rng);
  eval::TsneConfig cfg;
  cfg.perplexity = 8.0;  // 30 points need perplexity < 10
  cfg.iterations = 60;
  Tensor y1 = eval::tsne(b.points, cfg);
  Tensor y2 = eval::tsne(b.points, cfg);
  for (std::int64_t i = 0; i < y1.numel(); ++i)
    ASSERT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(Tsne, RejectsTooFewPoints) {
  Rng rng(4);
  Tensor x = Tensor::randn(Shape{10, 4}, rng);
  eval::TsneConfig cfg;
  cfg.perplexity = 15.0;  // needs N > 45
  EXPECT_THROW(eval::tsne(x, cfg), CheckError);
}

TEST(Silhouette, PerfectClustersNearOne) {
  Tensor points(Shape{4, 2}, {0.0f, 0.0f, 0.1f, 0.0f,
                              10.0f, 10.0f, 10.1f, 10.0f});
  EXPECT_GT(eval::silhouette_score(points, {0, 0, 1, 1}), 0.95f);
}

TEST(Silhouette, RandomLabelsNearZero) {
  Rng rng(5);
  Tensor points = Tensor::randn(Shape{60, 3}, rng);
  std::vector<int> labels;
  for (int i = 0; i < 60; ++i) labels.push_back(i % 2);
  const float s = eval::silhouette_score(points, labels);
  EXPECT_LT(std::abs(s), 0.15f);
}

TEST(Silhouette, RequiresTwoClasses) {
  Tensor points(Shape{3, 2});
  EXPECT_THROW(eval::silhouette_score(points, {0, 0, 0}), CheckError);
}

TEST(KnnAccuracy, PerfectOnSeparatedBlobs) {
  Rng rng(6);
  const auto b = two_blobs(20, 12.0f, rng);
  EXPECT_GT(eval::knn_accuracy(b.points, b.labels, 5), 97.0f);
}

TEST(KnnAccuracy, ChanceOnRandomLabels) {
  Rng rng(7);
  Tensor points = Tensor::randn(Shape{80, 4}, rng);
  std::vector<int> labels;
  for (int i = 0; i < 80; ++i)
    labels.push_back(static_cast<int>(rng.uniform_index(2)));
  const float acc = eval::knn_accuracy(points, labels, 5);
  EXPECT_GT(acc, 20.0f);
  EXPECT_LT(acc, 80.0f);
}

TEST(KnnAccuracy, KOneUsesNearestNeighbour) {
  Tensor points(Shape{4, 1}, {0.0f, 0.1f, 10.0f, 10.1f});
  EXPECT_FLOAT_EQ(eval::knn_accuracy(points, {0, 0, 1, 1}, 1), 100.0f);
}

}  // namespace
}  // namespace cq
