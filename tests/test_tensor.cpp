#include <gtest/gtest.h>

#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
  EXPECT_EQ(s.str(), "[2, 3, 4]");
}

TEST(Shape, ScalarShape) {
  Shape s;
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, EqualityAndInequality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, RejectsNonPositiveDims) {
  EXPECT_THROW(Shape({2, 0}), CheckError);
  EXPECT_THROW(Shape({-1}), CheckError);
}

TEST(Shape, RejectsOutOfRangeDimIndex) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), CheckError);
  EXPECT_THROW(s.dim(-3), CheckError);
}

TEST(Tensor, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.numel(), 1);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 4});
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(t[i], 0.0f);
}

TEST(Tensor, ExplicitDataValidated) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), CheckError);
}

TEST(Tensor, FullAndOnes) {
  Tensor t = Tensor::full(Shape{5}, 2.5f);
  for (std::int64_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(t[i], 2.5f);
  Tensor o = Tensor::ones(Shape{2, 2});
  EXPECT_FLOAT_EQ(o[3], 1.0f);
}

TEST(Tensor, FromInitializerList) {
  Tensor t = Tensor::from({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.shape(), Shape({3}));
  EXPECT_FLOAT_EQ(t[2], 3.0f);
}

TEST(Tensor, UniformWithinBounds) {
  Rng rng(5);
  Tensor t = Tensor::uniform(Shape{1000}, rng, -2.0f, 3.0f);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_GE(t[i], -2.0f);
    EXPECT_LT(t[i], 3.0f);
  }
}

TEST(Tensor, RandnMoments) {
  Rng rng(6);
  Tensor t = Tensor::randn(Shape{20000}, rng, 1.0f, 2.0f);
  double sum = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) sum += t[i];
  EXPECT_NEAR(sum / t.numel(), 1.0, 0.1);
}

TEST(Tensor, At2dAnd4dRowMajor) {
  Tensor t(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  t.at(0, 1) = 10.0f;
  EXPECT_FLOAT_EQ(t[1], 10.0f);

  Tensor u(Shape{1, 2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_FLOAT_EQ(u.at(0, 1, 0, 1), 5.0f);
  EXPECT_FLOAT_EQ(u.at(0, 1, 1, 0), 6.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.reshape(Shape{3, 2});
  EXPECT_FLOAT_EQ(r.at(2, 1), 5.0f);
  EXPECT_THROW(t.reshape(Shape{4, 2}), CheckError);
}

TEST(Tensor, AddInPlaceWithScale) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({10, 20, 30});
  a.add_(b, 0.5f);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[2], 18.0f);
}

TEST(Tensor, AddInPlaceShapeMismatchThrows) {
  Tensor a(Shape{2});
  Tensor b(Shape{3});
  EXPECT_THROW(a.add_(b), CheckError);
}

TEST(Tensor, MulInPlace) {
  Tensor a = Tensor::from({1, -2, 3});
  a.mul_(-2.0f);
  EXPECT_FLOAT_EQ(a[0], -2.0f);
  EXPECT_FLOAT_EQ(a[1], 4.0f);
}

TEST(Tensor, ValueSemantics) {
  Tensor a = Tensor::from({1, 2});
  Tensor b = a;  // deep copy
  b[0] = 99.0f;
  EXPECT_FLOAT_EQ(a[0], 1.0f);
}

TEST(Tensor, FillOverwritesAll) {
  Tensor a(Shape{4});
  a.fill(3.0f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(a[i], 3.0f);
}

TEST(Tensor, SpanExposesContiguousData) {
  Tensor a = Tensor::from({1, 2, 3});
  auto s = a.span();
  EXPECT_EQ(s.size(), 3u);
  s[1] = 20.0f;
  EXPECT_FLOAT_EQ(a[1], 20.0f);
}

}  // namespace
}  // namespace cq
