#include <gtest/gtest.h>

#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace cq {
namespace {

// Naive direct convolution for one CHW image: out[oc, oy, ox].
std::vector<float> naive_conv(const std::vector<float>& img,
                              const std::vector<float>& weight,
                              std::int64_t cin, std::int64_t cout,
                              const ConvGeometry& g) {
  const auto oh = g.out_h(), ow = g.out_w();
  std::vector<float> out(static_cast<std::size_t>(cout * oh * ow), 0.0f);
  for (std::int64_t oc = 0; oc < cout; ++oc)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        double s = 0.0;
        for (std::int64_t ic = 0; ic < cin; ++ic)
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky)
            for (std::int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const auto iy = oy * g.stride + ky - g.pad;
              const auto ix = ox * g.stride + kx - g.pad;
              if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) continue;
              const float iv = img[static_cast<std::size_t>(
                  (ic * g.in_h + iy) * g.in_w + ix)];
              const float wv = weight[static_cast<std::size_t>(
                  ((oc * cin + ic) * g.kernel_h + ky) * g.kernel_w + kx)];
              s += static_cast<double>(iv) * wv;
            }
        out[static_cast<std::size_t>((oc * oh + oy) * ow + ox)] =
            static_cast<float>(s);
      }
  return out;
}

ConvGeometry geom(std::int64_t c, std::int64_t h, std::int64_t w,
                  std::int64_t k, std::int64_t stride, std::int64_t pad) {
  ConvGeometry g;
  g.in_channels = c;
  g.in_h = h;
  g.in_w = w;
  g.kernel_h = g.kernel_w = k;
  g.stride = stride;
  g.pad = pad;
  return g;
}

TEST(Im2col, OutputGeometry) {
  auto g = geom(3, 8, 8, 3, 1, 1);
  EXPECT_EQ(g.out_h(), 8);
  EXPECT_EQ(g.out_w(), 8);
  EXPECT_EQ(g.col_rows(), 27);
  EXPECT_EQ(g.col_cols(), 64);
  auto g2 = geom(1, 8, 8, 3, 2, 1);
  EXPECT_EQ(g2.out_h(), 4);
}

TEST(Im2col, MatmulEqualsDirectConvolution) {
  Rng rng(1);
  for (const auto& [k, stride, pad] :
       std::vector<std::tuple<int, int, int>>{
           {3, 1, 1}, {3, 2, 1}, {1, 1, 0}, {5, 1, 2}, {3, 1, 0}}) {
    const auto g = geom(2, 7, 6, k, stride, pad);
    const std::int64_t cout = 3;
    Tensor img = Tensor::randn(Shape{g.in_channels, g.in_h, g.in_w}, rng);
    Tensor weight = Tensor::randn(Shape{cout, g.col_rows()}, rng);
    std::vector<float> cols(
        static_cast<std::size_t>(g.col_rows() * g.col_cols()));
    im2col(img.data(), g, cols.data());
    Tensor colm(Shape{g.col_rows(), g.col_cols()}, cols);
    Tensor out = ops::matmul(weight, colm);
    const auto naive = naive_conv(
        std::vector<float>(img.data(), img.data() + img.numel()),
        std::vector<float>(weight.data(), weight.data() + weight.numel()),
        g.in_channels, cout, g);
    ASSERT_EQ(static_cast<std::size_t>(out.numel()), naive.size())
        << "k=" << k << " s=" << stride << " p=" << pad;
    for (std::int64_t i = 0; i < out.numel(); ++i)
      EXPECT_NEAR(out[i], naive[static_cast<std::size_t>(i)], 1e-4);
  }
}

TEST(Im2col, PaddingProducesZeros) {
  const auto g = geom(1, 2, 2, 3, 1, 1);
  std::vector<float> img = {1, 2, 3, 4};
  std::vector<float> cols(
      static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(img.data(), g, cols.data());
  // First row = kernel position (0,0): for output (0,0) this samples input
  // (-1,-1) which is padding -> 0.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // of the backward pass.
  Rng rng(2);
  const auto g = geom(2, 6, 5, 3, 2, 1);
  Tensor x = Tensor::randn(Shape{g.in_channels, g.in_h, g.in_w}, rng);
  const auto cols_n = static_cast<std::size_t>(g.col_rows() * g.col_cols());
  Tensor y = Tensor::randn(Shape{static_cast<std::int64_t>(cols_n)}, rng);

  std::vector<float> cols(cols_n);
  im2col(x.data(), g, cols.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols_n; ++i)
    lhs += static_cast<double>(cols[i]) * y[static_cast<std::int64_t>(i)];

  std::vector<float> xg(static_cast<std::size_t>(x.numel()), 0.0f);
  col2im(y.data(), g, xg.data());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * xg[static_cast<std::size_t>(i)];

  EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-3);
}

TEST(Col2im, AccumulatesIntoExistingGradient) {
  const auto g = geom(1, 3, 3, 1, 1, 0);
  std::vector<float> cols(9, 1.0f);
  std::vector<float> grad(9, 5.0f);
  col2im(cols.data(), g, grad.data());
  for (float v : grad) EXPECT_FLOAT_EQ(v, 6.0f);
}

}  // namespace
}  // namespace cq
