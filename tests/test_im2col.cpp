#include <gtest/gtest.h>

#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace cq {
namespace {

// Naive direct convolution for one CHW image: out[oc, oy, ox].
std::vector<float> naive_conv(const std::vector<float>& img,
                              const std::vector<float>& weight,
                              std::int64_t cin, std::int64_t cout,
                              const ConvGeometry& g) {
  const auto oh = g.out_h(), ow = g.out_w();
  std::vector<float> out(static_cast<std::size_t>(cout * oh * ow), 0.0f);
  for (std::int64_t oc = 0; oc < cout; ++oc)
    for (std::int64_t oy = 0; oy < oh; ++oy)
      for (std::int64_t ox = 0; ox < ow; ++ox) {
        double s = 0.0;
        for (std::int64_t ic = 0; ic < cin; ++ic)
          for (std::int64_t ky = 0; ky < g.kernel_h; ++ky)
            for (std::int64_t kx = 0; kx < g.kernel_w; ++kx) {
              const auto iy = oy * g.stride + ky - g.pad;
              const auto ix = ox * g.stride + kx - g.pad;
              if (iy < 0 || iy >= g.in_h || ix < 0 || ix >= g.in_w) continue;
              const float iv = img[static_cast<std::size_t>(
                  (ic * g.in_h + iy) * g.in_w + ix)];
              const float wv = weight[static_cast<std::size_t>(
                  ((oc * cin + ic) * g.kernel_h + ky) * g.kernel_w + kx)];
              s += static_cast<double>(iv) * wv;
            }
        out[static_cast<std::size_t>((oc * oh + oy) * ow + ox)] =
            static_cast<float>(s);
      }
  return out;
}

ConvGeometry geom(std::int64_t c, std::int64_t h, std::int64_t w,
                  std::int64_t k, std::int64_t stride, std::int64_t pad) {
  ConvGeometry g;
  g.in_channels = c;
  g.in_h = h;
  g.in_w = w;
  g.kernel_h = g.kernel_w = k;
  g.stride = stride;
  g.pad = pad;
  return g;
}

TEST(Im2col, OutputGeometry) {
  auto g = geom(3, 8, 8, 3, 1, 1);
  EXPECT_EQ(g.out_h(), 8);
  EXPECT_EQ(g.out_w(), 8);
  EXPECT_EQ(g.col_rows(), 27);
  EXPECT_EQ(g.col_cols(), 64);
  auto g2 = geom(1, 8, 8, 3, 2, 1);
  EXPECT_EQ(g2.out_h(), 4);
}

TEST(Im2col, MatmulEqualsDirectConvolution) {
  Rng rng(1);
  for (const auto& [k, stride, pad] :
       std::vector<std::tuple<int, int, int>>{
           {3, 1, 1}, {3, 2, 1}, {1, 1, 0}, {5, 1, 2}, {3, 1, 0}}) {
    const auto g = geom(2, 7, 6, k, stride, pad);
    const std::int64_t cout = 3;
    Tensor img = Tensor::randn(Shape{g.in_channels, g.in_h, g.in_w}, rng);
    Tensor weight = Tensor::randn(Shape{cout, g.col_rows()}, rng);
    std::vector<float> cols(
        static_cast<std::size_t>(g.col_rows() * g.col_cols()));
    im2col(img.data(), g, cols.data());
    Tensor colm(Shape{g.col_rows(), g.col_cols()}, cols);
    Tensor out = ops::matmul(weight, colm);
    const auto naive = naive_conv(
        std::vector<float>(img.data(), img.data() + img.numel()),
        std::vector<float>(weight.data(), weight.data() + weight.numel()),
        g.in_channels, cout, g);
    ASSERT_EQ(static_cast<std::size_t>(out.numel()), naive.size())
        << "k=" << k << " s=" << stride << " p=" << pad;
    for (std::int64_t i = 0; i < out.numel(); ++i)
      EXPECT_NEAR(out[i], naive[static_cast<std::size_t>(i)], 1e-4);
  }
}

TEST(Im2col, PaddingProducesZeros) {
  const auto g = geom(1, 2, 2, 3, 1, 1);
  std::vector<float> img = {1, 2, 3, 4};
  std::vector<float> cols(
      static_cast<std::size_t>(g.col_rows() * g.col_cols()));
  im2col(img.data(), g, cols.data());
  // First row = kernel position (0,0): for output (0,0) this samples input
  // (-1,-1) which is padding -> 0.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
}

TEST(Im2row, IsExactTransposeOfIm2col) {
  // im2row + gemm kNT replaces im2col + kNN in the serving fast path for
  // small spatial extents; the swap is sound only if the patch matrix is
  // the exact transpose of the column matrix (same values, bit for bit).
  Rng rng(5);
  for (const auto& [h, w, k, stride, pad] :
       std::vector<std::tuple<int, int, int, int, int>>{
           {7, 6, 3, 1, 1}, {6, 6, 3, 2, 1}, {4, 4, 1, 1, 0},
           {5, 5, 5, 1, 2}, {2, 2, 3, 2, 1},  // 1x1 output, all-pad edges
       }) {
    const auto g = geom(2, h, w, k, stride, pad);
    Tensor img = Tensor::randn(Shape{g.in_channels, g.in_h, g.in_w}, rng);
    const auto rows_n = g.col_rows(), cols_n = g.col_cols();
    std::vector<float> cols(static_cast<std::size_t>(rows_n * cols_n));
    std::vector<float> patches(cols.size(), -1.0f);
    im2col(img.data(), g, cols.data());
    im2row(img.data(), g, patches.data());
    for (std::int64_t r = 0; r < rows_n; ++r)
      for (std::int64_t c = 0; c < cols_n; ++c)
        ASSERT_EQ(patches[static_cast<std::size_t>(c * rows_n + r)],
                  cols[static_cast<std::size_t>(r * cols_n + c)])
            << "h=" << h << " w=" << w << " k=" << k << " s=" << stride
            << " p=" << pad << " row=" << r << " col=" << c;
  }
}

// Re-pack a row-major [k, n] matrix into the packed-B sliver layout
// documented on gemm_prepacked_b: value (p, j) at
// packed[(j / kNR) * (k * kNR) + p * kNR + j % kNR], ragged tail zeroed.
std::vector<float> sliver_pack(const float* b, std::int64_t k, std::int64_t n) {
  const auto NR = gemm::kNR;
  const auto slivers = (n + NR - 1) / NR;
  std::vector<float> packed(static_cast<std::size_t>(slivers * k * NR), 0.0f);
  for (std::int64_t p = 0; p < k; ++p)
    for (std::int64_t j = 0; j < n; ++j)
      packed[static_cast<std::size_t>((j / NR) * (k * NR) + p * NR + j % NR)] =
          b[p * n + j];
  return packed;
}

TEST(Im2colPacked, MatchesSliverPackOfIm2col) {
  // im2col_packed must write exactly what pack_b would emit from the plain
  // im2col matrix — that is the contract that lets gemm_prepacked_b skip
  // its own packing pass and stay bit-identical to gemm(kNN, ...).
  Rng rng(11);
  // (c, h, w, k, stride, pad) with spatial % kNR == 0 and col_rows <= kKC.
  for (const auto& [c, h, w, k, stride, pad] :
       std::vector<std::tuple<int, int, int, int, int, int>>{
           {3, 8, 8, 3, 1, 1},   // 8x8 stem geometry, spatial 64
           {8, 8, 8, 3, 1, 1},   // spatial 64, krows 72
           {2, 16, 4, 3, 1, 1},  // ow=4: one sliver spans four y-rows
           {3, 8, 8, 3, 2, 1},   // stride 2, spatial 16 (one sliver/image)
           {1, 4, 4, 1, 1, 0},   // 1x1 kernel, krows 1
           {28, 8, 8, 3, 1, 1},  // krows 252, just under the kKC panel cap
       }) {
    const auto g = geom(c, h, w, k, stride, pad);
    ASSERT_LE(g.col_rows(), gemm::kKC);
    ASSERT_EQ(g.col_cols() % gemm::kNR, 0);
    Tensor img = Tensor::randn(Shape{g.in_channels, g.in_h, g.in_w}, rng);
    std::vector<float> cols(
        static_cast<std::size_t>(g.col_rows() * g.col_cols()));
    im2col(img.data(), g, cols.data());
    const auto expected = sliver_pack(cols.data(), g.col_rows(), g.col_cols());
    std::vector<float> packed(expected.size(), -1.0f);
    im2col_packed(img.data(), g, packed.data(), /*col0=*/0);
    for (std::size_t i = 0; i < expected.size(); ++i)
      ASSERT_EQ(packed[i], expected[i])
          << "c=" << c << " h=" << h << " w=" << w << " k=" << k
          << " s=" << stride << " p=" << pad << " @" << i;
  }
}

TEST(Im2colPacked, Col0OffsetsIntoABatchedPackedMatrix) {
  // Two images lowered side by side (image i at col0 = i * spatial) must
  // equal the sliver pack of the batched column matrix — the layout the
  // serving engine would hand to one whole-batch gemm_prepacked_b call.
  Rng rng(12);
  const auto g = geom(3, 8, 8, 3, 1, 1);
  const auto krows = g.col_rows(), spatial = g.col_cols();
  Tensor imgs = Tensor::randn(Shape{2, g.in_channels, g.in_h, g.in_w}, rng);
  const auto per = g.in_channels * g.in_h * g.in_w;
  std::vector<float> cols(static_cast<std::size_t>(krows * 2 * spatial));
  for (std::int64_t i = 0; i < 2; ++i)
    im2col(imgs.data() + i * per, g, cols.data() + i * spatial, 2 * spatial);
  const auto expected = sliver_pack(cols.data(), krows, 2 * spatial);
  std::vector<float> packed(expected.size(), -1.0f);
  for (std::int64_t i = 0; i < 2; ++i)
    im2col_packed(imgs.data() + i * per, g, packed.data(), i * spatial);
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_EQ(packed[i], expected[i]) << "@" << i;
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // of the backward pass.
  Rng rng(2);
  const auto g = geom(2, 6, 5, 3, 2, 1);
  Tensor x = Tensor::randn(Shape{g.in_channels, g.in_h, g.in_w}, rng);
  const auto cols_n = static_cast<std::size_t>(g.col_rows() * g.col_cols());
  Tensor y = Tensor::randn(Shape{static_cast<std::int64_t>(cols_n)}, rng);

  std::vector<float> cols(cols_n);
  im2col(x.data(), g, cols.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols_n; ++i)
    lhs += static_cast<double>(cols[i]) * y[static_cast<std::int64_t>(i)];

  std::vector<float> xg(static_cast<std::size_t>(x.numel()), 0.0f);
  col2im(y.data(), g, xg.data());
  double rhs = 0.0;
  for (std::int64_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * xg[static_cast<std::size_t>(i)];

  EXPECT_NEAR(lhs, rhs, 1e-3 * std::abs(lhs) + 1e-3);
}

TEST(Col2im, AccumulatesIntoExistingGradient) {
  const auto g = geom(1, 3, 3, 1, 1, 0);
  std::vector<float> cols(9, 1.0f);
  std::vector<float> grad(9, 5.0f);
  col2im(cols.data(), g, grad.data());
  for (float v : grad) EXPECT_FLOAT_EQ(v, 6.0f);
}

}  // namespace
}  // namespace cq
