// Contrastive losses: values, gradients, invariances.
#include <gtest/gtest.h>

#include <cmath>

#include "core/losses.hpp"
#include "tensor/ops.hpp"
#include "testutil.hpp"
#include "util/check.hpp"

namespace cq {
namespace {

TEST(NtXent, AlignedPairsScoreLowerThanRandom) {
  Rng rng(1);
  Tensor za = Tensor::randn(Shape{8, 6}, rng);
  Tensor zb_same = za;  // perfectly aligned positives
  Tensor zb_rand = Tensor::randn(Shape{8, 6}, rng);
  const float aligned = core::nt_xent(za, zb_same, 0.5f).value;
  const float random = core::nt_xent(za, zb_rand, 0.5f).value;
  EXPECT_LT(aligned, random);
}

TEST(NtXent, ValueIsFiniteAndPositive) {
  Rng rng(2);
  Tensor za = Tensor::randn(Shape{4, 5}, rng);
  Tensor zb = Tensor::randn(Shape{4, 5}, rng);
  const auto loss = core::nt_xent(za, zb, 0.5f);
  EXPECT_TRUE(std::isfinite(loss.value));
  EXPECT_GT(loss.value, 0.0f);
}

TEST(NtXent, SymmetricInArguments) {
  Rng rng(3);
  Tensor za = Tensor::randn(Shape{5, 4}, rng);
  Tensor zb = Tensor::randn(Shape{5, 4}, rng);
  const auto ab = core::nt_xent(za, zb, 0.3f);
  const auto ba = core::nt_xent(zb, za, 0.3f);
  EXPECT_NEAR(ab.value, ba.value, 1e-5);
  for (std::int64_t i = 0; i < ab.grad_a.numel(); ++i)
    EXPECT_NEAR(ab.grad_a[i], ba.grad_b[i], 1e-5);
}

TEST(NtXent, ScaleInvarianceFromNormalization) {
  Rng rng(4);
  Tensor za = Tensor::randn(Shape{4, 6}, rng);
  Tensor zb = Tensor::randn(Shape{4, 6}, rng);
  const float v1 = core::nt_xent(za, zb, 0.5f).value;
  const float v2 =
      core::nt_xent(ops::scale(za, 3.0f), ops::scale(zb, 3.0f), 0.5f).value;
  EXPECT_NEAR(v1, v2, 1e-4);
}

TEST(NtXent, GradientMatchesFiniteDifferences) {
  Rng rng(5);
  Tensor za = Tensor::randn(Shape{3, 4}, rng);
  Tensor zb = Tensor::randn(Shape{3, 4}, rng);
  const auto loss = core::nt_xent(za, zb, 0.5f);
  test::check_loss_gradient(
      [&](const Tensor& z) {
        return static_cast<double>(core::nt_xent(z, zb, 0.5f).value);
      },
      za, loss.grad_a);
  test::check_loss_gradient(
      [&](const Tensor& z) {
        return static_cast<double>(core::nt_xent(za, z, 0.5f).value);
      },
      zb, loss.grad_b);
}

TEST(NtXent, LowerTemperatureSharpens) {
  Rng rng(6);
  Tensor za = Tensor::randn(Shape{6, 5}, rng);
  Tensor zb = ops::add(za, ops::scale(Tensor::randn(Shape{6, 5}, rng), 0.1f));
  // With near-aligned positives, sharper softmax -> lower loss.
  const float sharp = core::nt_xent(za, zb, 0.1f).value;
  const float smooth = core::nt_xent(za, zb, 1.0f).value;
  EXPECT_LT(sharp, smooth);
}

TEST(NtXent, RejectsDegenerateInputs) {
  Rng rng(7);
  Tensor za = Tensor::randn(Shape{1, 4}, rng);
  Tensor zb = Tensor::randn(Shape{1, 4}, rng);
  EXPECT_THROW(core::nt_xent(za, zb, 0.5f), CheckError);  // needs N >= 2
  Tensor zc = Tensor::randn(Shape{4, 4}, rng);
  EXPECT_THROW(core::nt_xent(zc, zc, 0.0f), CheckError);  // bad tau
}

TEST(ByolMse, PerfectAlignmentGivesZero) {
  Rng rng(8);
  Tensor p = Tensor::randn(Shape{4, 6}, rng);
  const auto loss = core::byol_mse(p, ops::scale(p, 2.0f));
  EXPECT_NEAR(loss.value, 0.0f, 1e-5);
}

TEST(ByolMse, OppositeVectorsGiveFour) {
  Rng rng(9);
  Tensor p = Tensor::randn(Shape{3, 5}, rng);
  const auto loss = core::byol_mse(p, ops::scale(p, -1.0f));
  EXPECT_NEAR(loss.value, 4.0f, 1e-5);
}

TEST(ByolMse, TargetGradientIsZero) {
  Rng rng(10);
  Tensor p = Tensor::randn(Shape{4, 5}, rng);
  Tensor t = Tensor::randn(Shape{4, 5}, rng);
  const auto loss = core::byol_mse(p, t);
  EXPECT_FLOAT_EQ(ops::norm(loss.grad_b), 0.0f);
  EXPECT_GT(ops::norm(loss.grad_a), 0.0f);
}

TEST(ByolMse, GradientMatchesFiniteDifferences) {
  Rng rng(11);
  Tensor p = Tensor::randn(Shape{3, 4}, rng);
  Tensor t = Tensor::randn(Shape{3, 4}, rng);
  const auto loss = core::byol_mse(p, t);
  test::check_loss_gradient(
      [&](const Tensor& z) {
        return static_cast<double>(core::byol_mse(z, t).value);
      },
      p, loss.grad_a);
}

TEST(SymmetricMse, ZeroForIdenticalDirections) {
  Rng rng(12);
  Tensor a = Tensor::randn(Shape{3, 4}, rng);
  const auto loss = core::symmetric_mse(a, ops::scale(a, 0.5f));
  EXPECT_NEAR(loss.value, 0.0f, 1e-5);
}

TEST(SymmetricMse, GradientsFlowToBothSides) {
  Rng rng(13);
  Tensor a = Tensor::randn(Shape{4, 4}, rng);
  Tensor b = Tensor::randn(Shape{4, 4}, rng);
  const auto loss = core::symmetric_mse(a, b);
  EXPECT_GT(ops::norm(loss.grad_a), 0.0f);
  EXPECT_GT(ops::norm(loss.grad_b), 0.0f);
  test::check_loss_gradient(
      [&](const Tensor& z) {
        return static_cast<double>(core::symmetric_mse(z, b).value);
      },
      a, loss.grad_a);
  test::check_loss_gradient(
      [&](const Tensor& z) {
        return static_cast<double>(core::symmetric_mse(a, z).value);
      },
      b, loss.grad_b);
}

TEST(CrossEntropy, MatchesManualComputation) {
  Tensor logits(Shape{1, 3}, {0.0f, 0.0f, 0.0f});
  const auto loss = core::cross_entropy(logits, {1});
  EXPECT_NEAR(loss.value, std::log(3.0f), 1e-5);
}

TEST(CrossEntropy, PerfectPredictionNearZeroLoss) {
  Tensor logits(Shape{2, 3}, {10.0f, -10.0f, -10.0f,
                              -10.0f, 10.0f, -10.0f});
  const auto loss = core::cross_entropy(logits, {0, 1});
  EXPECT_LT(loss.value, 1e-3f);
  EXPECT_EQ(loss.correct, 2);
}

TEST(CrossEntropy, CountsCorrectPredictions) {
  Tensor logits(Shape{3, 2}, {2.0f, 0.0f, 0.0f, 2.0f, 2.0f, 0.0f});
  const auto loss = core::cross_entropy(logits, {0, 1, 1});
  EXPECT_EQ(loss.correct, 2);
}

TEST(CrossEntropy, GradientMatchesFiniteDifferences) {
  Rng rng(14);
  Tensor logits = Tensor::randn(Shape{4, 5}, rng);
  const std::vector<int> labels = {0, 2, 4, 1};
  const auto loss = core::cross_entropy(logits, labels);
  test::check_loss_gradient(
      [&](const Tensor& z) {
        return static_cast<double>(core::cross_entropy(z, labels).value);
      },
      logits, loss.grad_logits);
}

TEST(CrossEntropy, GradientRowsSumToZero) {
  Rng rng(15);
  Tensor logits = Tensor::randn(Shape{3, 4}, rng);
  const auto loss = core::cross_entropy(logits, {1, 2, 3});
  for (std::int64_t r = 0; r < 3; ++r) {
    double s = 0.0;
    for (std::int64_t c = 0; c < 4; ++c) s += loss.grad_logits.at(r, c);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(CrossEntropy, RejectsBadLabels) {
  Tensor logits(Shape{2, 3});
  EXPECT_THROW(core::cross_entropy(logits, {0, 3}), CheckError);
  EXPECT_THROW(core::cross_entropy(logits, {0}), CheckError);
}

}  // namespace
}  // namespace cq
