// CI bench gate: compares a freshly generated bench JSON against the
// checked-in repo-root baseline and fails (exit 1) on regression.
//
//   bench_check CANDIDATE.json BASELINE.json [--tolerance=0.30] [--absolute]
//   bench_check --selftest
//
// Both documents are flattened to path -> number entries
// ("cases[0].speedup", "fp32.batched.steady_heap_allocs", ...; booleans
// become 0/1) and every gated metric present in the BASELINE is compared
// against the candidate. By default only machine-portable metrics are
// gated — ratios and allocation counts that hold across hosts and shared
// CI runners:
//
//   speedup, reduction_pct        higher is better
//   steady_allocs_per_iter,
//   steady_heap_allocs            lower is better (zero must stay ~zero)
//   bitwise_equivalent            must stay true
//   int8.*.rps / int8.*.p99_us    the int8 serve numbers are the compute
//                                 path's headline claim, so they gate by
//                                 default despite being machine-dependent
//                                 (the ±30% band absorbs runner noise;
//                                 *_us latency metrics gate at double the
//                                 band — saturated-tail p99 is weather)
//
// --absolute additionally gates the remaining machine-dependent
// throughput/latency numbers (*_gflops, *_gbps, rps higher-better; *_us
// lower-better) — useful on a quiet dedicated host, too noisy for shared CI.
//
// A metric only fails when it moves beyond the tolerance in the WORSE
// direction; improvements are reported but never fail. A gated baseline
// metric missing from the candidate fails (schema drift), and matching
// zero gated metrics overall fails too, so a renamed key cannot silently
// disable the gate.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

struct Metric {
  std::string path;
  double value;
};

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON reader that flattens numbers (and booleans
// as 0/1) into path -> value entries. Strings and nulls are parsed and
// dropped. Not a validator: accepts every valid document these benches
// write; on malformed input it reports the byte offset and gives up.
// ---------------------------------------------------------------------------
class Flattener {
 public:
  explicit Flattener(const char* text) : p_(text), begin_(text) {}

  bool run(std::vector<Metric>& out) {
    out_ = &out;
    skip_ws();
    if (!value("")) return false;
    skip_ws();
    if (*p_ != '\0') return fail("trailing content");
    return true;
  }

  std::string error() const { return error_; }

 private:
  bool fail(const char* what) {
    if (error_.empty())
      error_ = std::string(what) + " at byte " + std::to_string(p_ - begin_);
    return false;
  }

  void skip_ws() {
    while (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r') ++p_;
  }

  bool string_lit(std::string* out) {
    if (*p_ != '"') return fail("expected string");
    ++p_;
    while (*p_ != '"') {
      if (*p_ == '\0') return fail("unterminated string");
      if (*p_ == '\\') {
        ++p_;
        if (*p_ == '\0') return fail("unterminated escape");
        // Content of escapes is irrelevant for key paths we gate on; keep
        // the raw characters so paths stay unique.
        if (out) out->push_back(*p_);
        ++p_;
        continue;
      }
      if (out) out->push_back(*p_);
      ++p_;
    }
    ++p_;
    return true;
  }

  bool value(const std::string& path) {
    skip_ws();
    switch (*p_) {
      case '{':
        return object(path);
      case '[':
        return array(path);
      case '"':
        return string_lit(nullptr);
      case 't':
        if (std::strncmp(p_, "true", 4) != 0) return fail("bad literal");
        p_ += 4;
        out_->push_back({path, 1.0});
        return true;
      case 'f':
        if (std::strncmp(p_, "false", 5) != 0) return fail("bad literal");
        p_ += 5;
        out_->push_back({path, 0.0});
        return true;
      case 'n':
        if (std::strncmp(p_, "null", 4) != 0) return fail("bad literal");
        p_ += 4;
        return true;
      default: {
        char* end = nullptr;
        const double v = std::strtod(p_, &end);
        if (end == p_) return fail("expected value");
        p_ = end;
        out_->push_back({path, v});
        return true;
      }
    }
  }

  bool object(const std::string& path) {
    ++p_;  // '{'
    skip_ws();
    if (*p_ == '}') {
      ++p_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!string_lit(&key)) return false;
      skip_ws();
      if (*p_ != ':') return fail("expected ':'");
      ++p_;
      if (!value(path.empty() ? key : path + "." + key)) return false;
      skip_ws();
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == '}') {
        ++p_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(const std::string& path) {
    ++p_;  // '['
    skip_ws();
    if (*p_ == ']') {
      ++p_;
      return true;
    }
    for (std::size_t i = 0;; ++i) {
      if (!value(path + "[" + std::to_string(i) + "]")) return false;
      skip_ws();
      if (*p_ == ',') {
        ++p_;
        continue;
      }
      if (*p_ == ']') {
        ++p_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  const char* p_;
  const char* begin_;
  std::vector<Metric>* out_ = nullptr;
  std::string error_;
};

bool read_file(const char* path, std::string& out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return true;
}

// ---------------------------------------------------------------------------
// Gating policy.
// ---------------------------------------------------------------------------

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string leaf_of(const std::string& path) {
  const auto dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

enum class Direction { kHigherBetter, kLowerBetter, kUngated };

Direction classify(const std::string& path, bool absolute) {
  const std::string leaf = leaf_of(path);
  if (leaf == "speedup" || leaf == "reduction_pct" ||
      leaf == "bitwise_equivalent")
    return Direction::kHigherBetter;
  if (leaf == "steady_allocs_per_iter" || leaf == "steady_heap_allocs")
    return Direction::kLowerBetter;
  // The int8 serve rps/p99 are gated unconditionally: "int8 batched beats
  // fp32 batched" is the compute path's reason to exist, and a silent 2x
  // throughput collapse there is a kernel regression, not host noise. p50
  // and the fp32 numbers stay opt-in via --absolute.
  if (path.rfind("int8.", 0) == 0) {
    if (leaf == "rps") return Direction::kHigherBetter;
    if (leaf == "p99_us") return Direction::kLowerBetter;
  }
  // The serve bench's multi-worker scale-out summary gates by default:
  // scaling_efficiency is a same-host ratio (rps at max workers over rps at
  // one worker, normalized by min(workers, cores)), and the per-point
  // rps/p99 curve plus the burst-spike p99 are the sharded-queue layer's
  // headline numbers. The *_us entries inherit the doubled latency band.
  if (leaf == "scaling_efficiency") return Direction::kHigherBetter;
  if (path.rfind("scaling.", 0) == 0) {
    if (leaf == "rps" || leaf == "rps_1w" || leaf == "rps_max_w")
      return Direction::kHigherBetter;
    if (leaf == "p99_us" || leaf == "spike_p99_us")
      return Direction::kLowerBetter;
  }
  // The search bench gates its accuracy and headline numbers by default:
  // recall@10 is pure math over deterministic encoders (machine-portable),
  // target_met is the subsystem's acceptance bit (scan >= 8x fp32 at
  // recall@10 >= 0.9), and the headline speedups are same-host ratios like
  // the kernel-layer "speedup" leaves. The service closed loop gates like
  // the serve bench's int8 section — rps plus the (doubled-band) p99.
  if (leaf == "recall_at_10" || leaf == "target_met")
    return Direction::kHigherBetter;
  if (path.rfind("headline.", 0) == 0 &&
      leaf.find("speedup") != std::string::npos)
    return Direction::kHigherBetter;
  if (path.rfind("service.", 0) == 0) {
    if (leaf == "rps") return Direction::kHigherBetter;
    if (leaf == "p99_us") return Direction::kLowerBetter;
  }
  if (absolute) {
    if (ends_with(leaf, "_gflops") || ends_with(leaf, "_gbps") ||
        leaf == "rps")
      return Direction::kHigherBetter;
    if (ends_with(leaf, "_us")) return Direction::kLowerBetter;
  }
  return Direction::kUngated;
}

struct GateResult {
  int gated = 0;
  int failed = 0;
  int improved = 0;
};

// When a lower-is-better baseline is exactly zero (the pool's steady-state
// allocation counts), a relative band is meaningless; allow only rounding
// noise above zero.
constexpr double kZeroSlack = 0.5;

GateResult gate(const std::vector<Metric>& candidate,
                const std::vector<Metric>& baseline, double tolerance,
                bool absolute, bool verbose) {
  GateResult r;
  for (const auto& base : baseline) {
    const auto dir = classify(base.path, absolute);
    if (dir == Direction::kUngated) continue;
    ++r.gated;
    // Tail latency under closed-loop saturation is the noisiest gated
    // number (queue depth x service time on a shared core); give latency
    // metrics twice the band so the gate catches collapses, not weather.
    const double tol =
        ends_with(leaf_of(base.path), "_us") ? tolerance * 2.0 : tolerance;

    const Metric* cand = nullptr;
    for (const auto& c : candidate)
      if (c.path == base.path) {
        cand = &c;
        break;
      }
    if (cand == nullptr) {
      ++r.failed;
      std::printf("FAIL %-55s missing from candidate (baseline %.4g)\n",
                  base.path.c_str(), base.value);
      continue;
    }

    bool bad = false;
    bool better = false;
    if (dir == Direction::kHigherBetter) {
      bad = cand->value < base.value * (1.0 - tol);
      better = cand->value > base.value * (1.0 + tol);
    } else {
      bad = base.value == 0.0 ? cand->value > kZeroSlack
                              : cand->value > base.value * (1.0 + tol);
      better = base.value != 0.0 &&
               cand->value < base.value * (1.0 - tol);
    }

    if (bad) {
      ++r.failed;
      std::printf("FAIL %-55s %.4g -> %.4g (%s, tol %.0f%%)\n",
                  base.path.c_str(), base.value, cand->value,
                  dir == Direction::kHigherBetter ? "higher is better"
                                                  : "lower is better",
                  tol * 100.0);
    } else if (better) {
      ++r.improved;
      std::printf("  ok %-55s %.4g -> %.4g (improved)\n", base.path.c_str(),
                  base.value, cand->value);
    } else if (verbose) {
      std::printf("  ok %-55s %.4g -> %.4g\n", base.path.c_str(), base.value,
                  cand->value);
    }
  }
  return r;
}

// ---------------------------------------------------------------------------
// Selftest: parser + gating policy, no files needed. Run by ctest as
// bench_check_selftest.
// ---------------------------------------------------------------------------

int selftest() {
  int failures = 0;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      ++failures;
      std::printf("selftest FAIL: %s\n", what);
    }
  };

  {
    std::vector<Metric> m;
    Flattener fl(
        "{\"a\": {\"speedup\": 2.5, \"name\": \"x\\\"y\"}, "
        "\"cases\": [{\"rps\": 1e3}, {\"rps\": 2000}], "
        "\"flag\": true, \"none\": null, \"empty\": [], \"eo\": {}}");
    expect(fl.run(m), "parse nested document");
    expect(m.size() == 4, "flattened entry count");
    expect(m[0].path == "a.speedup" && m[0].value == 2.5, "object path");
    expect(m[1].path == "cases[0].rps" && m[1].value == 1000.0,
           "array path + exponent");
    expect(m[2].path == "cases[1].rps" && m[2].value == 2000.0,
           "second array element");
    expect(m[3].path == "flag" && m[3].value == 1.0, "bool -> 1");
  }
  {
    std::vector<Metric> m;
    Flattener fl("{\"a\": }");
    expect(!fl.run(m), "malformed document rejected");
    expect(!fl.error().empty(), "malformed document carries an error");
  }

  const auto flatten = [](const char* text) {
    std::vector<Metric> m;
    Flattener fl(text);
    if (!fl.run(m)) std::abort();
    return m;
  };

  // Portable-metric gating at the default 30%.
  const auto base = flatten(
      "{\"speedup\": 2.0, \"reduction_pct\": 100.0,"
      " \"steady_heap_allocs\": 0, \"bitwise_equivalent\": true,"
      " \"rps\": 1000.0}");
  {
    // Identical candidate: all pass, rps not gated without --absolute.
    const auto r = gate(base, base, 0.30, false, false);
    expect(r.gated == 4 && r.failed == 0, "identical candidate passes");
  }
  {
    const auto r = gate(base, base, 0.30, true, false);
    expect(r.gated == 5, "--absolute gates rps too");
  }
  {
    // Speedup collapsed beyond 30%: regression.
    const auto cand = flatten(
        "{\"speedup\": 1.3, \"reduction_pct\": 100.0,"
        " \"steady_heap_allocs\": 0, \"bitwise_equivalent\": true}");
    const auto r = gate(cand, base, 0.30, false, false);
    expect(r.failed == 1, "speedup drop fails");
  }
  {
    // Speedup improved: never a failure.
    const auto cand = flatten(
        "{\"speedup\": 4.0, \"reduction_pct\": 100.0,"
        " \"steady_heap_allocs\": 0, \"bitwise_equivalent\": true}");
    const auto r = gate(cand, base, 0.30, false, false);
    expect(r.failed == 0 && r.improved == 1, "improvement passes");
  }
  {
    // Zero-baseline alloc count regressing to 3/iter: caught despite the
    // relative band being meaningless at zero.
    const auto cand = flatten(
        "{\"speedup\": 2.0, \"reduction_pct\": 100.0,"
        " \"steady_heap_allocs\": 3, \"bitwise_equivalent\": true}");
    const auto r = gate(cand, base, 0.30, false, false);
    expect(r.failed == 1, "zero-baseline alloc regression fails");
  }
  {
    // Equivalence gate flipping to false: caught.
    const auto cand = flatten(
        "{\"speedup\": 2.0, \"reduction_pct\": 100.0,"
        " \"steady_heap_allocs\": 0, \"bitwise_equivalent\": false}");
    const auto r = gate(cand, base, 0.30, false, false);
    expect(r.failed == 1, "bitwise_equivalent=false fails");
  }
  {
    // Gated key missing from the candidate: schema drift fails.
    const auto cand = flatten(
        "{\"reduction_pct\": 100.0, \"steady_heap_allocs\": 0,"
        " \"bitwise_equivalent\": true}");
    const auto r = gate(cand, base, 0.30, false, false);
    expect(r.failed == 1, "missing gated key fails");
  }

  // int8 serve throughput/latency gates by default; fp32's only under
  // --absolute.
  const auto serve_base = flatten(
      "{\"fp32\": {\"batched\": {\"rps\": 10000.0, \"p99_us\": 900.0}},"
      " \"int8\": {\"batched\": {\"rps\": 13000.0, \"p99_us\": 800.0}}}");
  {
    const auto r = gate(serve_base, serve_base, 0.30, false, false);
    expect(r.gated == 2 && r.failed == 0,
           "only int8 rps/p99 gated without --absolute");
  }
  {
    const auto r = gate(serve_base, serve_base, 0.30, true, false);
    expect(r.gated == 4, "--absolute gates fp32 rps/p99 too");
  }
  {
    // int8 batched throughput collapsing: caught without --absolute.
    const auto cand = flatten(
        "{\"fp32\": {\"batched\": {\"rps\": 10000.0, \"p99_us\": 900.0}},"
        " \"int8\": {\"batched\": {\"rps\": 6000.0, \"p99_us\": 800.0}}}");
    const auto r = gate(cand, serve_base, 0.30, false, false);
    expect(r.failed == 1, "int8 rps collapse fails by default");
  }
  {
    // int8 batched p99 blowing up: caught without --absolute. Latency
    // gates at DOUBLE the band (tail latency is the noisiest metric), so
    // +50% passes and +75% fails.
    const auto noisy = flatten(
        "{\"fp32\": {\"batched\": {\"rps\": 10000.0, \"p99_us\": 900.0}},"
        " \"int8\": {\"batched\": {\"rps\": 13000.0, \"p99_us\": 1200.0}}}");
    expect(gate(noisy, serve_base, 0.30, false, false).failed == 0,
           "int8 p99 +50% is within the doubled latency band");
    const auto blown = flatten(
        "{\"fp32\": {\"batched\": {\"rps\": 10000.0, \"p99_us\": 900.0}},"
        " \"int8\": {\"batched\": {\"rps\": 13000.0, \"p99_us\": 1400.0}}}");
    expect(gate(blown, serve_base, 0.30, false, false).failed == 1,
           "int8 p99 blow-up fails by default");
  }
  {
    // fp32 rps collapsing alone: still host noise unless --absolute.
    const auto cand = flatten(
        "{\"fp32\": {\"batched\": {\"rps\": 4000.0, \"p99_us\": 900.0}},"
        " \"int8\": {\"batched\": {\"rps\": 13000.0, \"p99_us\": 800.0}}}");
    expect(gate(cand, serve_base, 0.30, false, false).failed == 0,
           "fp32 rps ungated by default");
    expect(gate(cand, serve_base, 0.30, true, false).failed == 1,
           "--absolute catches the fp32 rps collapse");
  }

  // Scale-out metrics (serve's "scaling" section) gate by default: the
  // curve's rps/p99, the 1w/max-w summary, efficiency, and the spike tail.
  const auto scale_base = flatten(
      "{\"scaling\": {\"curve\": [{\"workers\": 1, \"rps\": 500.0, "
      "\"p99_us\": 2000.0}], \"workers_max\": 4, \"rps_1w\": 500.0, "
      "\"rps_max_w\": 480.0, \"scaling_efficiency\": 0.96, "
      "\"spike_p99_us\": 30000.0}}");
  {
    const auto r = gate(scale_base, scale_base, 0.30, false, false);
    expect(r.gated == 6 && r.failed == 0,
           "scaling curve + summary gated by default");
  }
  {
    // Efficiency collapsing (sharding overhead eating the scale-out win).
    const auto cand = flatten(
        "{\"scaling\": {\"curve\": [{\"workers\": 1, \"rps\": 500.0, "
        "\"p99_us\": 2000.0}], \"workers_max\": 4, \"rps_1w\": 500.0, "
        "\"rps_max_w\": 480.0, \"scaling_efficiency\": 0.5, "
        "\"spike_p99_us\": 30000.0}}");
    expect(gate(cand, scale_base, 0.30, false, false).failed == 1,
           "scaling_efficiency collapse fails");
  }
  {
    // Spike p99 is a latency metric: +50% sits inside the doubled band,
    // a 2x blow-up fails.
    const auto noisy = flatten(
        "{\"scaling\": {\"curve\": [{\"workers\": 1, \"rps\": 500.0, "
        "\"p99_us\": 2000.0}], \"workers_max\": 4, \"rps_1w\": 500.0, "
        "\"rps_max_w\": 480.0, \"scaling_efficiency\": 0.96, "
        "\"spike_p99_us\": 45000.0}}");
    expect(gate(noisy, scale_base, 0.30, false, false).failed == 0,
           "spike p99 +50% is within the doubled latency band");
    const auto blown = flatten(
        "{\"scaling\": {\"curve\": [{\"workers\": 1, \"rps\": 500.0, "
        "\"p99_us\": 2000.0}], \"workers_max\": 4, \"rps_1w\": 500.0, "
        "\"rps_max_w\": 480.0, \"scaling_efficiency\": 0.96, "
        "\"spike_p99_us\": 62000.0}}");
    expect(gate(blown, scale_base, 0.30, false, false).failed == 1,
           "spike p99 blow-up fails");
  }

  // The search bench's recall/headline/service metrics gate by default;
  // raw scan throughput (scan_codes_per_s) stays informational.
  const auto search_base = flatten(
      "{\"recall\": {\"cq\": {\"points\": [{\"bits_per_dim\": 1, "
      "\"recall_at_10\": 0.625}]}}, "
      "\"headline\": {\"scan_speedup_1bit\": 17.0, "
      "\"query_speedup_1bit_rerank\": 16.0, \"recall_at_10\": 1.0, "
      "\"target_met\": true}, "
      "\"service\": {\"rps\": 2300.0, \"p99_us\": 2600.0, "
      "\"scan_codes_per_s\": 9.0e8}}");
  {
    const auto r = gate(search_base, search_base, 0.30, false, false);
    expect(r.gated == 7 && r.failed == 0,
           "search recall/headline/service gated by default");
  }
  {
    // Recall@10 dropping past the band: a binarization/rerank regression.
    const auto cand = flatten(
        "{\"recall\": {\"cq\": {\"points\": [{\"bits_per_dim\": 1, "
        "\"recall_at_10\": 0.3}]}}, "
        "\"headline\": {\"scan_speedup_1bit\": 17.0, "
        "\"query_speedup_1bit_rerank\": 16.0, \"recall_at_10\": 1.0, "
        "\"target_met\": true}, "
        "\"service\": {\"rps\": 2300.0, \"p99_us\": 2600.0, "
        "\"scan_codes_per_s\": 9.0e8}}");
    expect(gate(cand, search_base, 0.30, false, false).failed == 1,
           "recall@10 collapse fails");
  }
  {
    // target_met flipping false (the acceptance bit) and the service p99
    // blowing past even the doubled latency band: two failures.
    const auto cand = flatten(
        "{\"recall\": {\"cq\": {\"points\": [{\"bits_per_dim\": 1, "
        "\"recall_at_10\": 0.625}]}}, "
        "\"headline\": {\"scan_speedup_1bit\": 17.0, "
        "\"query_speedup_1bit_rerank\": 16.0, \"recall_at_10\": 1.0, "
        "\"target_met\": false}, "
        "\"service\": {\"rps\": 2300.0, \"p99_us\": 6000.0, "
        "\"scan_codes_per_s\": 9.0e8}}");
    expect(gate(cand, search_base, 0.30, false, false).failed == 2,
           "target_met=false + service p99 blow-up fail");
  }

  if (failures == 0) std::printf("BENCH_CHECK_SELFTEST_OK\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 0.30;
  bool absolute = false;
  bool verbose = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--selftest") == 0) return selftest();
    if (std::strncmp(argv[i], "--tolerance=", 12) == 0) {
      tolerance = std::strtod(argv[i] + 12, nullptr);
      if (!(tolerance > 0.0 && tolerance < 10.0)) {
        std::fprintf(stderr, "bench_check: bad --tolerance '%s'\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--absolute") == 0) {
      absolute = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "bench_check: unknown flag '%s'\nusage: bench_check "
                   "CANDIDATE.json BASELINE.json [--tolerance=0.30] "
                   "[--absolute] [--verbose] | --selftest\n",
                   argv[i]);
      return 2;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_check CANDIDATE.json BASELINE.json "
                 "[--tolerance=0.30] [--absolute] [--verbose] | --selftest\n");
    return 2;
  }

  std::string cand_text, base_text;
  if (!read_file(files[0], cand_text)) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", files[0]);
    return 2;
  }
  if (!read_file(files[1], base_text)) {
    std::fprintf(stderr, "bench_check: cannot read %s\n", files[1]);
    return 2;
  }

  std::vector<Metric> cand, base;
  {
    Flattener fl(cand_text.c_str());
    if (!fl.run(cand)) {
      std::fprintf(stderr, "bench_check: %s: %s\n", files[0],
                   fl.error().c_str());
      return 2;
    }
  }
  {
    Flattener fl(base_text.c_str());
    if (!fl.run(base)) {
      std::fprintf(stderr, "bench_check: %s: %s\n", files[1],
                   fl.error().c_str());
      return 2;
    }
  }

  std::printf("bench_check: %s vs baseline %s (tol %.0f%%%s)\n", files[0],
              files[1], tolerance * 100.0,
              absolute ? ", absolute metrics gated" : "");
  const auto r = gate(cand, base, tolerance, absolute, verbose);
  if (r.gated == 0) {
    std::fprintf(stderr,
                 "bench_check: no gated metrics found in baseline %s — "
                 "schema drift?\n",
                 files[1]);
    return 1;
  }
  std::printf("bench_check: %d metric(s) gated, %d failed, %d improved\n",
              r.gated, r.failed, r.improved);
  if (r.failed > 0) {
    std::printf("BENCH_CHECK_REGRESSION\n");
    return 1;
  }
  std::printf("BENCH_CHECK_OK\n");
  return 0;
}
