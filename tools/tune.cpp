// Scratch tuning harness (not part of the shipped library).
#include <cstdio>
#include <cstdlib>
#include <string>
#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "eval/classifier.hpp"
#include "eval/separability.hpp"

using namespace cq;

int main(int argc, char** argv) {
  std::string which = argc > 1 ? argv[1] : "synth-cifar";
  int ssl_n = argc > 2 ? atoi(argv[2]) : 256;
  int epochs = argc > 3 ? atoi(argv[3]) : 12;
  float lr = argc > 4 ? atof(argv[4]) : 0.1f;
  std::string arch = argc > 5 ? argv[5] : "resnet18";

  auto cfg = which == "synth-cifar" ? data::synth_cifar_config()
                                    : data::synth_imagenet_config();
  Rng r1(1001), r2(1002), r3(1003);
  auto ssl = data::make_synth_dataset(cfg, ssl_n, r1);
  auto labeled = data::make_synth_dataset(cfg, 400, r2);
  auto test = data::make_synth_dataset(cfg, 160, r3);

  Rng sub_rng(77);
  auto lab10 = data::subset_fraction(labeled, 0.10, sub_rng);
  auto lab1 = data::subset_fraction(labeled, 0.01, sub_rng);

  eval::EvalConfig lecfg; lecfg.epochs = 30; lecfg.batch_size = 32;
  eval::EvalConfig fcfg; fcfg.epochs = 25; fcfg.batch_size = 16; fcfg.lr = 0.02f;

  for (std::string v : {"vanilla", "cq-a", "cq-c"}) {
    Rng rb(7);
    auto enc = models::make_encoder(arch, rb);
    core::PretrainConfig pc;
    pc.variant = core::parse_variant(v);
    pc.precisions = quant::PrecisionSet::range(6, 16);
    pc.epochs = epochs; pc.batch_size = 32; pc.lr = lr;
    pc.warmup_epochs = 1; pc.proj_hidden = 32; pc.proj_dim = 16;
    core::SimClrCqTrainer trainer(enc, pc);
    auto stats = trainer.train(ssl);
    float lin = eval::linear_eval(enc, labeled, test, lecfg).test_accuracy;
    float ft10 = eval::finetune_eval(enc, lab10, test, fcfg).test_accuracy;
    float ft1 = eval::finetune_eval(enc, lab1, test, fcfg).test_accuracy;
    printf("%-8s %-10s loss %.3f->%.3f div=%d | linear %.1f  ft10%% %.1f  ft1%% %.1f  (%.0fs)\n",
           v.c_str(), arch.c_str(), stats.epoch_loss.front(), stats.epoch_loss.back(),
           (int)stats.diverged, lin, ft10, ft1, stats.seconds);
    fflush(stdout);
  }
  return 0;
}
