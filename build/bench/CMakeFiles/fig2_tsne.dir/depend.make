# Empty dependencies file for fig2_tsne.
# This may be replaced when dependencies are built.
