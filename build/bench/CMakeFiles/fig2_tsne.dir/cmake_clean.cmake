file(REMOVE_RECURSE
  "CMakeFiles/fig2_tsne.dir/fig2_tsne.cpp.o"
  "CMakeFiles/fig2_tsne.dir/fig2_tsne.cpp.o.d"
  "fig2_tsne"
  "fig2_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
