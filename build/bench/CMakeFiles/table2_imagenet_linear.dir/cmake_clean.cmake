file(REMOVE_RECURSE
  "CMakeFiles/table2_imagenet_linear.dir/table2_imagenet_linear.cpp.o"
  "CMakeFiles/table2_imagenet_linear.dir/table2_imagenet_linear.cpp.o.d"
  "table2_imagenet_linear"
  "table2_imagenet_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_imagenet_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
