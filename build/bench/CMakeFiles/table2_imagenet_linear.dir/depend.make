# Empty dependencies file for table2_imagenet_linear.
# This may be replaced when dependencies are built.
