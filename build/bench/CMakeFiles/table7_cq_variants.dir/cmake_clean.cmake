file(REMOVE_RECURSE
  "CMakeFiles/table7_cq_variants.dir/table7_cq_variants.cpp.o"
  "CMakeFiles/table7_cq_variants.dir/table7_cq_variants.cpp.o.d"
  "table7_cq_variants"
  "table7_cq_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_cq_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
