# Empty compiler generated dependencies file for table7_cq_variants.
# This may be replaced when dependencies are built.
