file(REMOVE_RECURSE
  "CMakeFiles/table5_cifar_linear.dir/table5_cifar_linear.cpp.o"
  "CMakeFiles/table5_cifar_linear.dir/table5_cifar_linear.cpp.o.d"
  "table5_cifar_linear"
  "table5_cifar_linear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_cifar_linear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
