# Empty compiler generated dependencies file for table5_cifar_linear.
# This may be replaced when dependencies are built.
