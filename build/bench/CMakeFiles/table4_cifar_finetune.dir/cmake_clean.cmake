file(REMOVE_RECURSE
  "CMakeFiles/table4_cifar_finetune.dir/table4_cifar_finetune.cpp.o"
  "CMakeFiles/table4_cifar_finetune.dir/table4_cifar_finetune.cpp.o.d"
  "table4_cifar_finetune"
  "table4_cifar_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_cifar_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
