# Empty dependencies file for table4_cifar_finetune.
# This may be replaced when dependencies are built.
