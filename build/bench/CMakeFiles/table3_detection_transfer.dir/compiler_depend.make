# Empty compiler generated dependencies file for table3_detection_transfer.
# This may be replaced when dependencies are built.
