file(REMOVE_RECURSE
  "CMakeFiles/table3_detection_transfer.dir/table3_detection_transfer.cpp.o"
  "CMakeFiles/table3_detection_transfer.dir/table3_detection_transfer.cpp.o.d"
  "table3_detection_transfer"
  "table3_detection_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_detection_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
