# Empty compiler generated dependencies file for table1_imagenet_finetune.
# This may be replaced when dependencies are built.
