file(REMOVE_RECURSE
  "CMakeFiles/table1_imagenet_finetune.dir/table1_imagenet_finetune.cpp.o"
  "CMakeFiles/table1_imagenet_finetune.dir/table1_imagenet_finetune.cpp.o.d"
  "table1_imagenet_finetune"
  "table1_imagenet_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_imagenet_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
