# Empty dependencies file for ext_extensions.
# This may be replaced when dependencies are built.
