file(REMOVE_RECURSE
  "CMakeFiles/ext_extensions.dir/ext_extensions.cpp.o"
  "CMakeFiles/ext_extensions.dir/ext_extensions.cpp.o.d"
  "ext_extensions"
  "ext_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
