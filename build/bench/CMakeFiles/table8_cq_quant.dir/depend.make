# Empty dependencies file for table8_cq_quant.
# This may be replaced when dependencies are built.
