file(REMOVE_RECURSE
  "CMakeFiles/table8_cq_quant.dir/table8_cq_quant.cpp.o"
  "CMakeFiles/table8_cq_quant.dir/table8_cq_quant.cpp.o.d"
  "table8_cq_quant"
  "table8_cq_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_cq_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
