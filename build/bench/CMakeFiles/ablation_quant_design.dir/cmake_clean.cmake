file(REMOVE_RECURSE
  "CMakeFiles/ablation_quant_design.dir/ablation_quant_design.cpp.o"
  "CMakeFiles/ablation_quant_design.dir/ablation_quant_design.cpp.o.d"
  "ablation_quant_design"
  "ablation_quant_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_quant_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
