# Empty compiler generated dependencies file for ablation_quant_design.
# This may be replaced when dependencies are built.
