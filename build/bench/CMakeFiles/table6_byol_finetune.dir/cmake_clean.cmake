file(REMOVE_RECURSE
  "CMakeFiles/table6_byol_finetune.dir/table6_byol_finetune.cpp.o"
  "CMakeFiles/table6_byol_finetune.dir/table6_byol_finetune.cpp.o.d"
  "table6_byol_finetune"
  "table6_byol_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_byol_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
