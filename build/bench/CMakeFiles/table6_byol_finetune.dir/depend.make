# Empty dependencies file for table6_byol_finetune.
# This may be replaced when dependencies are built.
