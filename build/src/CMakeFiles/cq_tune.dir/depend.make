# Empty dependencies file for cq_tune.
# This may be replaced when dependencies are built.
