file(REMOVE_RECURSE
  "CMakeFiles/cq_tune.dir/__/tools/tune.cpp.o"
  "CMakeFiles/cq_tune.dir/__/tools/tune.cpp.o.d"
  "cq_tune"
  "cq_tune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_tune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
