file(REMOVE_RECURSE
  "libcq_models.a"
)
