# Empty compiler generated dependencies file for cq_models.
# This may be replaced when dependencies are built.
