file(REMOVE_RECURSE
  "CMakeFiles/cq_models.dir/models/encoder.cpp.o"
  "CMakeFiles/cq_models.dir/models/encoder.cpp.o.d"
  "CMakeFiles/cq_models.dir/models/heads.cpp.o"
  "CMakeFiles/cq_models.dir/models/heads.cpp.o.d"
  "CMakeFiles/cq_models.dir/models/mobilenetv2.cpp.o"
  "CMakeFiles/cq_models.dir/models/mobilenetv2.cpp.o.d"
  "CMakeFiles/cq_models.dir/models/resnet.cpp.o"
  "CMakeFiles/cq_models.dir/models/resnet.cpp.o.d"
  "libcq_models.a"
  "libcq_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
