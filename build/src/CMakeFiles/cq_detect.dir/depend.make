# Empty dependencies file for cq_detect.
# This may be replaced when dependencies are built.
