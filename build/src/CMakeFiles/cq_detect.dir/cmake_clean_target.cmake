file(REMOVE_RECURSE
  "libcq_detect.a"
)
