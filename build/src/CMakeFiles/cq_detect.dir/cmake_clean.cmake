file(REMOVE_RECURSE
  "CMakeFiles/cq_detect.dir/detect/ap.cpp.o"
  "CMakeFiles/cq_detect.dir/detect/ap.cpp.o.d"
  "CMakeFiles/cq_detect.dir/detect/boxes.cpp.o"
  "CMakeFiles/cq_detect.dir/detect/boxes.cpp.o.d"
  "CMakeFiles/cq_detect.dir/detect/dataset.cpp.o"
  "CMakeFiles/cq_detect.dir/detect/dataset.cpp.o.d"
  "CMakeFiles/cq_detect.dir/detect/head.cpp.o"
  "CMakeFiles/cq_detect.dir/detect/head.cpp.o.d"
  "libcq_detect.a"
  "libcq_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
