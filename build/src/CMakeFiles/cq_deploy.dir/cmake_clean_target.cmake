file(REMOVE_RECURSE
  "libcq_deploy.a"
)
