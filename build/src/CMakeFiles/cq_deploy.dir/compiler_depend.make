# Empty compiler generated dependencies file for cq_deploy.
# This may be replaced when dependencies are built.
