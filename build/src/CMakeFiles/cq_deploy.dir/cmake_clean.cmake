file(REMOVE_RECURSE
  "CMakeFiles/cq_deploy.dir/deploy/int8.cpp.o"
  "CMakeFiles/cq_deploy.dir/deploy/int8.cpp.o.d"
  "libcq_deploy.a"
  "libcq_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
