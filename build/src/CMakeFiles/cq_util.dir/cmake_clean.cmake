file(REMOVE_RECURSE
  "CMakeFiles/cq_util.dir/util/csv.cpp.o"
  "CMakeFiles/cq_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/cq_util.dir/util/logging.cpp.o"
  "CMakeFiles/cq_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/cq_util.dir/util/rng.cpp.o"
  "CMakeFiles/cq_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/cq_util.dir/util/serialize.cpp.o"
  "CMakeFiles/cq_util.dir/util/serialize.cpp.o.d"
  "CMakeFiles/cq_util.dir/util/table.cpp.o"
  "CMakeFiles/cq_util.dir/util/table.cpp.o.d"
  "libcq_util.a"
  "libcq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
