file(REMOVE_RECURSE
  "libcq_util.a"
)
