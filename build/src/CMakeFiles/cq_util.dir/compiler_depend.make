# Empty compiler generated dependencies file for cq_util.
# This may be replaced when dependencies are built.
