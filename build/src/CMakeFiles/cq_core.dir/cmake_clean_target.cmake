file(REMOVE_RECURSE
  "libcq_core.a"
)
