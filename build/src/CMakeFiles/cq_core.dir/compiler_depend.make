# Empty compiler generated dependencies file for cq_core.
# This may be replaced when dependencies are built.
