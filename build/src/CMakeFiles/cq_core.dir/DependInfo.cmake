
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/byol.cpp" "src/CMakeFiles/cq_core.dir/core/byol.cpp.o" "gcc" "src/CMakeFiles/cq_core.dir/core/byol.cpp.o.d"
  "/root/repo/src/core/cq.cpp" "src/CMakeFiles/cq_core.dir/core/cq.cpp.o" "gcc" "src/CMakeFiles/cq_core.dir/core/cq.cpp.o.d"
  "/root/repo/src/core/losses.cpp" "src/CMakeFiles/cq_core.dir/core/losses.cpp.o" "gcc" "src/CMakeFiles/cq_core.dir/core/losses.cpp.o.d"
  "/root/repo/src/core/moco.cpp" "src/CMakeFiles/cq_core.dir/core/moco.cpp.o" "gcc" "src/CMakeFiles/cq_core.dir/core/moco.cpp.o.d"
  "/root/repo/src/core/runner.cpp" "src/CMakeFiles/cq_core.dir/core/runner.cpp.o" "gcc" "src/CMakeFiles/cq_core.dir/core/runner.cpp.o.d"
  "/root/repo/src/core/simclr.cpp" "src/CMakeFiles/cq_core.dir/core/simclr.cpp.o" "gcc" "src/CMakeFiles/cq_core.dir/core/simclr.cpp.o.d"
  "/root/repo/src/core/simsiam.cpp" "src/CMakeFiles/cq_core.dir/core/simsiam.cpp.o" "gcc" "src/CMakeFiles/cq_core.dir/core/simsiam.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cq_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
