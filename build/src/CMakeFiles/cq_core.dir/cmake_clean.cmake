file(REMOVE_RECURSE
  "CMakeFiles/cq_core.dir/core/byol.cpp.o"
  "CMakeFiles/cq_core.dir/core/byol.cpp.o.d"
  "CMakeFiles/cq_core.dir/core/cq.cpp.o"
  "CMakeFiles/cq_core.dir/core/cq.cpp.o.d"
  "CMakeFiles/cq_core.dir/core/losses.cpp.o"
  "CMakeFiles/cq_core.dir/core/losses.cpp.o.d"
  "CMakeFiles/cq_core.dir/core/moco.cpp.o"
  "CMakeFiles/cq_core.dir/core/moco.cpp.o.d"
  "CMakeFiles/cq_core.dir/core/runner.cpp.o"
  "CMakeFiles/cq_core.dir/core/runner.cpp.o.d"
  "CMakeFiles/cq_core.dir/core/simclr.cpp.o"
  "CMakeFiles/cq_core.dir/core/simclr.cpp.o.d"
  "CMakeFiles/cq_core.dir/core/simsiam.cpp.o"
  "CMakeFiles/cq_core.dir/core/simsiam.cpp.o.d"
  "libcq_core.a"
  "libcq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
