file(REMOVE_RECURSE
  "libcq_quant.a"
)
