file(REMOVE_RECURSE
  "CMakeFiles/cq_quant.dir/quant/actquant.cpp.o"
  "CMakeFiles/cq_quant.dir/quant/actquant.cpp.o.d"
  "CMakeFiles/cq_quant.dir/quant/policy.cpp.o"
  "CMakeFiles/cq_quant.dir/quant/policy.cpp.o.d"
  "CMakeFiles/cq_quant.dir/quant/quantizer.cpp.o"
  "CMakeFiles/cq_quant.dir/quant/quantizer.cpp.o.d"
  "libcq_quant.a"
  "libcq_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
