file(REMOVE_RECURSE
  "CMakeFiles/cq_tensor.dir/tensor/gemm.cpp.o"
  "CMakeFiles/cq_tensor.dir/tensor/gemm.cpp.o.d"
  "CMakeFiles/cq_tensor.dir/tensor/im2col.cpp.o"
  "CMakeFiles/cq_tensor.dir/tensor/im2col.cpp.o.d"
  "CMakeFiles/cq_tensor.dir/tensor/ops.cpp.o"
  "CMakeFiles/cq_tensor.dir/tensor/ops.cpp.o.d"
  "CMakeFiles/cq_tensor.dir/tensor/shape.cpp.o"
  "CMakeFiles/cq_tensor.dir/tensor/shape.cpp.o.d"
  "CMakeFiles/cq_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/cq_tensor.dir/tensor/tensor.cpp.o.d"
  "libcq_tensor.a"
  "libcq_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
