
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/gemm.cpp" "src/CMakeFiles/cq_tensor.dir/tensor/gemm.cpp.o" "gcc" "src/CMakeFiles/cq_tensor.dir/tensor/gemm.cpp.o.d"
  "/root/repo/src/tensor/im2col.cpp" "src/CMakeFiles/cq_tensor.dir/tensor/im2col.cpp.o" "gcc" "src/CMakeFiles/cq_tensor.dir/tensor/im2col.cpp.o.d"
  "/root/repo/src/tensor/ops.cpp" "src/CMakeFiles/cq_tensor.dir/tensor/ops.cpp.o" "gcc" "src/CMakeFiles/cq_tensor.dir/tensor/ops.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/CMakeFiles/cq_tensor.dir/tensor/shape.cpp.o" "gcc" "src/CMakeFiles/cq_tensor.dir/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/cq_tensor.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/cq_tensor.dir/tensor/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
