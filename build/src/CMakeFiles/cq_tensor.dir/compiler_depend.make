# Empty compiler generated dependencies file for cq_tensor.
# This may be replaced when dependencies are built.
