file(REMOVE_RECURSE
  "CMakeFiles/cq_data.dir/data/augment.cpp.o"
  "CMakeFiles/cq_data.dir/data/augment.cpp.o.d"
  "CMakeFiles/cq_data.dir/data/dataset.cpp.o"
  "CMakeFiles/cq_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/cq_data.dir/data/image.cpp.o"
  "CMakeFiles/cq_data.dir/data/image.cpp.o.d"
  "CMakeFiles/cq_data.dir/data/synth.cpp.o"
  "CMakeFiles/cq_data.dir/data/synth.cpp.o.d"
  "libcq_data.a"
  "libcq_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
