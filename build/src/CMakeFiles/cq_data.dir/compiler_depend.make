# Empty compiler generated dependencies file for cq_data.
# This may be replaced when dependencies are built.
