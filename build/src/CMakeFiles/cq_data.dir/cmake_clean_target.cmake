file(REMOVE_RECURSE
  "libcq_data.a"
)
