
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/augment.cpp" "src/CMakeFiles/cq_data.dir/data/augment.cpp.o" "gcc" "src/CMakeFiles/cq_data.dir/data/augment.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/cq_data.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/cq_data.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/image.cpp" "src/CMakeFiles/cq_data.dir/data/image.cpp.o" "gcc" "src/CMakeFiles/cq_data.dir/data/image.cpp.o.d"
  "/root/repo/src/data/synth.cpp" "src/CMakeFiles/cq_data.dir/data/synth.cpp.o" "gcc" "src/CMakeFiles/cq_data.dir/data/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
