file(REMOVE_RECURSE
  "libcq_optim.a"
)
