# Empty compiler generated dependencies file for cq_optim.
# This may be replaced when dependencies are built.
