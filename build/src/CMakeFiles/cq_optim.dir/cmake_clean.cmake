file(REMOVE_RECURSE
  "CMakeFiles/cq_optim.dir/optim/adam.cpp.o"
  "CMakeFiles/cq_optim.dir/optim/adam.cpp.o.d"
  "CMakeFiles/cq_optim.dir/optim/schedule.cpp.o"
  "CMakeFiles/cq_optim.dir/optim/schedule.cpp.o.d"
  "CMakeFiles/cq_optim.dir/optim/sgd.cpp.o"
  "CMakeFiles/cq_optim.dir/optim/sgd.cpp.o.d"
  "libcq_optim.a"
  "libcq_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
