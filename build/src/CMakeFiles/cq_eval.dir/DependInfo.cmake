
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/classifier.cpp" "src/CMakeFiles/cq_eval.dir/eval/classifier.cpp.o" "gcc" "src/CMakeFiles/cq_eval.dir/eval/classifier.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/CMakeFiles/cq_eval.dir/eval/metrics.cpp.o" "gcc" "src/CMakeFiles/cq_eval.dir/eval/metrics.cpp.o.d"
  "/root/repo/src/eval/separability.cpp" "src/CMakeFiles/cq_eval.dir/eval/separability.cpp.o" "gcc" "src/CMakeFiles/cq_eval.dir/eval/separability.cpp.o.d"
  "/root/repo/src/eval/tsne.cpp" "src/CMakeFiles/cq_eval.dir/eval/tsne.cpp.o" "gcc" "src/CMakeFiles/cq_eval.dir/eval/tsne.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
