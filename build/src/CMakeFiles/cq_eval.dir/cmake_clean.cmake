file(REMOVE_RECURSE
  "CMakeFiles/cq_eval.dir/eval/classifier.cpp.o"
  "CMakeFiles/cq_eval.dir/eval/classifier.cpp.o.d"
  "CMakeFiles/cq_eval.dir/eval/metrics.cpp.o"
  "CMakeFiles/cq_eval.dir/eval/metrics.cpp.o.d"
  "CMakeFiles/cq_eval.dir/eval/separability.cpp.o"
  "CMakeFiles/cq_eval.dir/eval/separability.cpp.o.d"
  "CMakeFiles/cq_eval.dir/eval/tsne.cpp.o"
  "CMakeFiles/cq_eval.dir/eval/tsne.cpp.o.d"
  "libcq_eval.a"
  "libcq_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
