file(REMOVE_RECURSE
  "libcq_eval.a"
)
