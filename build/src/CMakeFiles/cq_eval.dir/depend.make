# Empty dependencies file for cq_eval.
# This may be replaced when dependencies are built.
