file(REMOVE_RECURSE
  "CMakeFiles/cq_nn.dir/nn/activations.cpp.o"
  "CMakeFiles/cq_nn.dir/nn/activations.cpp.o.d"
  "CMakeFiles/cq_nn.dir/nn/batchnorm.cpp.o"
  "CMakeFiles/cq_nn.dir/nn/batchnorm.cpp.o.d"
  "CMakeFiles/cq_nn.dir/nn/conv2d.cpp.o"
  "CMakeFiles/cq_nn.dir/nn/conv2d.cpp.o.d"
  "CMakeFiles/cq_nn.dir/nn/init.cpp.o"
  "CMakeFiles/cq_nn.dir/nn/init.cpp.o.d"
  "CMakeFiles/cq_nn.dir/nn/linear.cpp.o"
  "CMakeFiles/cq_nn.dir/nn/linear.cpp.o.d"
  "CMakeFiles/cq_nn.dir/nn/module.cpp.o"
  "CMakeFiles/cq_nn.dir/nn/module.cpp.o.d"
  "CMakeFiles/cq_nn.dir/nn/pooling.cpp.o"
  "CMakeFiles/cq_nn.dir/nn/pooling.cpp.o.d"
  "CMakeFiles/cq_nn.dir/nn/sequential.cpp.o"
  "CMakeFiles/cq_nn.dir/nn/sequential.cpp.o.d"
  "libcq_nn.a"
  "libcq_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
