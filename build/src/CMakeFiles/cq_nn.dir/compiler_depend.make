# Empty compiler generated dependencies file for cq_nn.
# This may be replaced when dependencies are built.
