
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/cq_nn.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/cq_nn.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/cq_nn.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/cq_nn.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/CMakeFiles/cq_nn.dir/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/cq_nn.dir/nn/conv2d.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/CMakeFiles/cq_nn.dir/nn/init.cpp.o" "gcc" "src/CMakeFiles/cq_nn.dir/nn/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/cq_nn.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/cq_nn.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/CMakeFiles/cq_nn.dir/nn/module.cpp.o" "gcc" "src/CMakeFiles/cq_nn.dir/nn/module.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/CMakeFiles/cq_nn.dir/nn/pooling.cpp.o" "gcc" "src/CMakeFiles/cq_nn.dir/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/CMakeFiles/cq_nn.dir/nn/sequential.cpp.o" "gcc" "src/CMakeFiles/cq_nn.dir/nn/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
