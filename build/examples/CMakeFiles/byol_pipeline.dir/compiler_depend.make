# Empty compiler generated dependencies file for byol_pipeline.
# This may be replaced when dependencies are built.
