file(REMOVE_RECURSE
  "CMakeFiles/byol_pipeline.dir/byol_pipeline.cpp.o"
  "CMakeFiles/byol_pipeline.dir/byol_pipeline.cpp.o.d"
  "byol_pipeline"
  "byol_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byol_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
