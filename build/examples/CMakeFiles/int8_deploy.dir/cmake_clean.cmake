file(REMOVE_RECURSE
  "CMakeFiles/int8_deploy.dir/int8_deploy.cpp.o"
  "CMakeFiles/int8_deploy.dir/int8_deploy.cpp.o.d"
  "int8_deploy"
  "int8_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/int8_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
