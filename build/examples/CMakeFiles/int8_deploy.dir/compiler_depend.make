# Empty compiler generated dependencies file for int8_deploy.
# This may be replaced when dependencies are built.
