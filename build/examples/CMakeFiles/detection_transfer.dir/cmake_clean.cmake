file(REMOVE_RECURSE
  "CMakeFiles/detection_transfer.dir/detection_transfer.cpp.o"
  "CMakeFiles/detection_transfer.dir/detection_transfer.cpp.o.d"
  "detection_transfer"
  "detection_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
