# Empty dependencies file for detection_transfer.
# This may be replaced when dependencies are built.
