file(REMOVE_RECURSE
  "CMakeFiles/cifar_pretrain_finetune.dir/cifar_pretrain_finetune.cpp.o"
  "CMakeFiles/cifar_pretrain_finetune.dir/cifar_pretrain_finetune.cpp.o.d"
  "cifar_pretrain_finetune"
  "cifar_pretrain_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cifar_pretrain_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
