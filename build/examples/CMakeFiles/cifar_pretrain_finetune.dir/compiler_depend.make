# Empty compiler generated dependencies file for cifar_pretrain_finetune.
# This may be replaced when dependencies are built.
