
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_gemm.cpp" "tests/CMakeFiles/test_gemm.dir/test_gemm.cpp.o" "gcc" "tests/CMakeFiles/test_gemm.dir/test_gemm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cq_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_deploy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
