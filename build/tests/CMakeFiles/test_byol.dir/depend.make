# Empty dependencies file for test_byol.
# This may be replaced when dependencies are built.
