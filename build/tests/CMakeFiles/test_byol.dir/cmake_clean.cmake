file(REMOVE_RECURSE
  "CMakeFiles/test_byol.dir/test_byol.cpp.o"
  "CMakeFiles/test_byol.dir/test_byol.cpp.o.d"
  "test_byol"
  "test_byol.pdb"
  "test_byol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_byol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
