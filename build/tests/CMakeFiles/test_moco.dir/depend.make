# Empty dependencies file for test_moco.
# This may be replaced when dependencies are built.
