file(REMOVE_RECURSE
  "CMakeFiles/test_moco.dir/test_moco.cpp.o"
  "CMakeFiles/test_moco.dir/test_moco.cpp.o.d"
  "test_moco"
  "test_moco.pdb"
  "test_moco[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_moco.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
