file(REMOVE_RECURSE
  "CMakeFiles/test_simclr.dir/test_simclr.cpp.o"
  "CMakeFiles/test_simclr.dir/test_simclr.cpp.o.d"
  "test_simclr"
  "test_simclr.pdb"
  "test_simclr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simclr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
