# Empty dependencies file for test_simclr.
# This may be replaced when dependencies are built.
