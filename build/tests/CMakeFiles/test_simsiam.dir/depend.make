# Empty dependencies file for test_simsiam.
# This may be replaced when dependencies are built.
