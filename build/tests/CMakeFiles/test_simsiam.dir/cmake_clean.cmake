file(REMOVE_RECURSE
  "CMakeFiles/test_simsiam.dir/test_simsiam.cpp.o"
  "CMakeFiles/test_simsiam.dir/test_simsiam.cpp.o.d"
  "test_simsiam"
  "test_simsiam.pdb"
  "test_simsiam[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simsiam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
