# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_ops[1]_include.cmake")
include("/root/repo/build/tests/test_gemm[1]_include.cmake")
include("/root/repo/build/tests/test_im2col[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_nn_gradcheck[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_augment[1]_include.cmake")
include("/root/repo/build/tests/test_optim[1]_include.cmake")
include("/root/repo/build/tests/test_losses[1]_include.cmake")
include("/root/repo/build/tests/test_simclr[1]_include.cmake")
include("/root/repo/build/tests/test_byol[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_tsne[1]_include.cmake")
include("/root/repo/build/tests/test_detect[1]_include.cmake")
include("/root/repo/build/tests/test_runner[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_moco[1]_include.cmake")
include("/root/repo/build/tests/test_deploy[1]_include.cmake")
include("/root/repo/build/tests/test_simsiam[1]_include.cmake")
include("/root/repo/build/tests/test_property2[1]_include.cmake")
