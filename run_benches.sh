#!/bin/bash
# Runs every table/figure bench, skipping ones already completed
# (marker: bench_out/<name>.txt ends with the CQ_BENCH_DONE line).
# Scale knobs below trade runtime for statistical polish; unset them for a
# full-scale run.
export CQ_FT_EPOCHS=${CQ_FT_EPOCHS:-10}
export CQ_DET_EPOCHS=${CQ_DET_EPOCHS:-20}
export CQ_TSNE_ITERS=${CQ_TSNE_ITERS:-200}
mkdir -p bench_out
for b in table1_imagenet_finetune table2_imagenet_linear table3_detection_transfer \
         table4_cifar_finetune table5_cifar_linear table6_byol_finetune \
         table7_cq_variants table8_cq_quant fig2_tsne ablation_quant_design \
         ext_extensions; do
  out="bench_out/${b}.txt"
  if [ -f "$out" ] && grep -q "^CQ_BENCH_DONE$" "$out"; then
    echo "skip $b (done)"
    continue
  fi
  echo "=== RUNNING $b ==="
  if ./build/bench/$b > "$out.tmp" 2> "bench_out/${b}.err"; then
    echo "CQ_BENCH_DONE" >> "$out.tmp"
    mv "$out.tmp" "$out"
    echo "done $b"
  else
    echo "FAILED $b (see bench_out/${b}.err)"
    mv "$out.tmp" "$out.failed" 2>/dev/null
  fi
done
echo ALL_BENCHES_DONE
