#!/bin/bash
# Runs every table/figure bench, skipping ones already completed
# (marker: bench_out/<name>.txt ends with the CQ_BENCH_DONE line), then
# regenerates the repo-root machine-readable baselines:
#   BENCH_gemm.json      blocked-vs-reference GEMM GFLOP/s
#   BENCH_pipeline.json  steady-state allocation accounting
#   BENCH_kernels.json   SIMD kernel layer: fused epilogues, quantize-on-pack
#   BENCH_serve.json     serving engine: dynamic batching vs serial baseline
#
#   ./run_benches.sh          build ./build if needed, run benches + JSONs
#   ./run_benches.sh --check  correctness sweep instead of benches: substrate
#                             + kernel tests under ASan+UBSan (`sanitize`
#                             preset), under the portable scalar kernel
#                             backend (`scalar` preset, CQ_SCALAR_KERNELS=ON),
#                             and the serve-labeled threaded tests under
#                             ThreadSanitizer (`tsan` preset)
#
# Scale knobs below trade runtime for statistical polish; unset them for a
# full-scale run.
set -u
cd "$(dirname "$0")"

if [ "${1:-}" = "--check" ]; then
  set -e
  echo "=== sanitize preset (ASan+UBSan, substrate + kernel tests) ==="
  cmake --preset sanitize
  cmake --build --preset sanitize -j"$(nproc)"
  ctest --preset sanitize -j"$(nproc)"
  echo "=== scalar preset (CQ_SCALAR_KERNELS=ON, portable backend) ==="
  cmake --preset scalar
  cmake --build --preset scalar -j"$(nproc)"
  ctest --preset scalar -j"$(nproc)"
  echo "=== tsan preset (ThreadSanitizer, serve-labeled tests) ==="
  cmake --preset tsan
  cmake --build --preset tsan -j"$(nproc)"
  ctest --preset tsan -j"$(nproc)"
  echo ALL_CHECKS_DONE
  exit 0
fi

export CQ_FT_EPOCHS=${CQ_FT_EPOCHS:-10}
export CQ_DET_EPOCHS=${CQ_DET_EPOCHS:-20}
export CQ_TSNE_ITERS=${CQ_TSNE_ITERS:-200}

if [ ! -x build/bench/micro_kernels ] || [ ! -x build/bench/kernels ] \
   || [ ! -x build/bench/pipeline_alloc ] || [ ! -x build/bench/serve ]; then
  cmake --preset default
  cmake --build --preset default -j"$(nproc)"
fi

mkdir -p bench_out
for b in table1_imagenet_finetune table2_imagenet_linear table3_detection_transfer \
         table4_cifar_finetune table5_cifar_linear table6_byol_finetune \
         table7_cq_variants table8_cq_quant fig2_tsne ablation_quant_design \
         ext_extensions; do
  out="bench_out/${b}.txt"
  if [ -f "$out" ] && grep -q "^CQ_BENCH_DONE$" "$out"; then
    echo "skip $b (done)"
    continue
  fi
  echo "=== RUNNING $b ==="
  if ./build/bench/$b > "$out.tmp" 2> "bench_out/${b}.err"; then
    echo "CQ_BENCH_DONE" >> "$out.tmp"
    mv "$out.tmp" "$out"
    echo "done $b"
  else
    echo "FAILED $b (see bench_out/${b}.err)"
    mv "$out.tmp" "$out.failed" 2>/dev/null
  fi
done

# Machine-readable baselines live in the repo root so perf drift shows up in
# review diffs. Each regenerates unconditionally (cheap next to the tables).
echo "=== RUNNING json baselines ==="
./build/bench/micro_kernels --gemm_json=BENCH_gemm.json \
  2> bench_out/gemm_json.err && echo "done BENCH_gemm.json" \
  || echo "FAILED BENCH_gemm.json (see bench_out/gemm_json.err)"
./build/bench/pipeline_alloc --json=BENCH_pipeline.json \
  > bench_out/pipeline_json.txt 2>&1 && echo "done BENCH_pipeline.json" \
  || echo "FAILED BENCH_pipeline.json (see bench_out/pipeline_json.txt)"
./build/bench/kernels --json=BENCH_kernels.json \
  2> bench_out/kernels_json.err && echo "done BENCH_kernels.json" \
  || echo "FAILED BENCH_kernels.json (see bench_out/kernels_json.err)"
./build/bench/serve --json=BENCH_serve.json \
  > bench_out/serve_json.txt 2>&1 && echo "done BENCH_serve.json" \
  || echo "FAILED BENCH_serve.json (see bench_out/serve_json.txt)"
echo ALL_BENCHES_DONE
