#!/bin/bash
# Runs every table/figure bench, skipping ones already completed
# (marker: bench_out/<name>.txt ends with the CQ_BENCH_DONE line), then
# regenerates the repo-root machine-readable baselines:
#   BENCH_gemm.json      blocked-vs-reference GEMM GFLOP/s
#   BENCH_pipeline.json  steady-state allocation accounting
#   BENCH_kernels.json   SIMD kernel layer: fused epilogues, quantize-on-pack
#   BENCH_serve.json     serving engine: dynamic batching vs serial baseline,
#                        plus the sharded-worker load matrix + scaling curve
#   BENCH_compile.json   graph compiler: arena footprint, compiled-vs-eager
#   BENCH_threadpool.json  thread pool: size-1 parity, dispatch overhead,
#                        parallel_for scaling
#   BENCH_search.json    binary-embedding search: Hamming scan vs fp32 brute
#                        force, recall@10-vs-bits, service qps/p99
#   BENCH_vit.json       transformer encoder: attention GEMM GFLOP/s,
#                        compiled-vs-eager ViT, CPT-V int8 recall@10 study
#
#   ./run_benches.sh            build ./build if needed, run benches + JSONs
#   ./run_benches.sh --check    correctness sweep instead of benches:
#                               substrate + kernel tests under ASan+UBSan
#                               (`sanitize` preset), under the portable scalar
#                               kernel backend (`scalar` preset,
#                               CQ_SCALAR_KERNELS=ON), and the serve-labeled
#                               threaded tests under ThreadSanitizer (`tsan`
#                               preset). Always reconfigures each preset:
#                               their build presets name explicit test
#                               targets, and a tree configured before a
#                               target was added fails with "No rule to
#                               make target" instead of self-regenerating.
#   ./run_benches.sh --ci-gate  CI perf gate: run the bench-labeled ctest
#                               smokes, regenerate the eight bench JSONs into
#                               bench_out/, and compare each against the
#                               checked-in repo-root baseline with
#                               tools/bench_check at ±30% on the
#                               machine-portable metrics plus the int8 serve
#                               rps/p99 and the scale-out summary (scaling
#                               curve rps/p99, scaling_efficiency,
#                               spike_p99_us — same-host comparisons; the
#                               fp32 throughput gates only under
#                               --absolute). Non-zero exit on any smoke
#                               failure or regression.
#
# Any other flag is an error (exit 2) — CI must not silently fall through to
# the multi-hour full bench run because of a typo.
#
# Scale knobs below trade runtime for statistical polish; unset them for a
# full-scale run.
set -u
cd "$(dirname "$0")"

# Bench numbers are only comparable when the thread count is pinned: detect
# the hardware, print it, persist it next to the outputs, and default
# CQ_THREADS to the detected core count (callers can still override). The
# bench paths (--ci-gate and the full run) call this before running
# anything; the serve/threadpool JSONs also record the same values under
# their "hardware" key. The --check sweeps do NOT pin: the sanitizer runs
# force CQ_THREADS=4 instead so the threaded paths are exercised with real
# concurrency even on a single-core host.
pin_bench_threads() {
  CORES="$(nproc)"
  export CQ_THREADS="${CQ_THREADS:-$CORES}"
  echo "hardware: ${CORES} cores, CQ_THREADS=${CQ_THREADS}"
  mkdir -p bench_out
  echo "cores=${CORES} cq_threads=${CQ_THREADS}" > bench_out/hardware.txt
}

# Configure a preset only when its build tree has no cache yet, so repeated
# sweeps skip the cmake re-run and a half-deleted tree self-heals.
configure_if_missing() { # preset builddir
  if [ ! -f "$2/CMakeCache.txt" ]; then
    cmake --preset "$1"
  fi
}

case "${1:-}" in
--check)
  set -e
  # CQ_THREADS=4 forces real pool/queue concurrency through the sanitizer
  # runs regardless of the host's core count (the threadpool, parallel-GEMM,
  # and MPMC queue tests must be clean at >=4 threads, not just at the
  # single-core default).
  echo "=== sanitize preset (ASan+UBSan, substrate + kernel tests) ==="
  cmake --preset sanitize
  cmake --build --preset sanitize -j"$(nproc)"
  CQ_THREADS=4 ctest --preset sanitize -j"$(nproc)"
  echo "=== scalar preset (CQ_SCALAR_KERNELS=ON, portable backend) ==="
  cmake --preset scalar
  cmake --build --preset scalar -j"$(nproc)"
  ctest --preset scalar -j"$(nproc)"
  echo "=== tsan preset (ThreadSanitizer, serve-labeled tests) ==="
  cmake --preset tsan
  cmake --build --preset tsan -j"$(nproc)"
  CQ_THREADS=4 ctest --preset tsan -j"$(nproc)"
  echo ALL_CHECKS_DONE
  exit 0
  ;;
--ci-gate)
  set -e
  pin_bench_threads
  configure_if_missing default build
  cmake --build --preset default -j"$(nproc)"
  echo "=== bench-labeled ctest smokes ==="
  ctest --preset default -L bench
  echo "=== regenerating bench JSONs into bench_out/ ==="
  mkdir -p bench_out
  ./build/bench/micro_kernels --gemm_json=bench_out/BENCH_gemm.json \
    2> bench_out/gemm_json.err
  ./build/bench/pipeline_alloc --json=bench_out/BENCH_pipeline.json \
    > bench_out/pipeline_json.txt 2>&1
  ./build/bench/kernels --json=bench_out/BENCH_kernels.json \
    2> bench_out/kernels_json.err
  ./build/bench/serve --json=bench_out/BENCH_serve.json \
    > bench_out/serve_json.txt 2>&1
  ./build/bench/compile --json=bench_out/BENCH_compile.json \
    > bench_out/compile_json.txt 2>&1
  ./build/bench/threadpool --json=bench_out/BENCH_threadpool.json \
    > bench_out/threadpool_json.txt 2>&1
  ./build/bench/search --json=bench_out/BENCH_search.json \
    > bench_out/search_json.txt 2>&1
  ./build/bench/vit --json=bench_out/BENCH_vit.json \
    > bench_out/vit_json.txt 2>&1
  echo "=== comparing against repo-root baselines ==="
  status=0
  for b in gemm pipeline kernels serve compile threadpool search vit; do
    # Fail fast on a missing baseline: cq_bench_check would only see the
    # unreadable-file error, and a bench added without its checked-in
    # baseline must not look like a perf regression (or worse, pass).
    if [ ! -f "BENCH_${b}.json" ]; then
      echo "run_benches.sh: baseline BENCH_${b}.json missing from repo" \
        "root — run ./run_benches.sh once and commit the generated file" >&2
      echo "CI_GATE_MISSING_BASELINE" >&2
      exit 1
    fi
    # And fail fast when the bench didn't write its candidate: a bench that
    # exits 0 without emitting JSON (or a generation line dropped from the
    # list above) must not silently skip its gate.
    if [ ! -f "bench_out/BENCH_${b}.json" ]; then
      echo "run_benches.sh: candidate bench_out/BENCH_${b}.json was not" \
        "generated — see bench_out/${b}_json.* for the bench's output" >&2
      echo "CI_GATE_MISSING_CANDIDATE" >&2
      exit 1
    fi
    ./build/src/cq_bench_check "bench_out/BENCH_${b}.json" \
      "BENCH_${b}.json" || status=1
  done
  if [ "$status" -ne 0 ]; then
    echo "CI_GATE_REGRESSION" >&2
    exit 1
  fi
  echo CI_GATE_OK
  exit 0
  ;;
"") ;;
*)
  echo "run_benches.sh: unknown flag '$1' (expected --check or --ci-gate)" >&2
  exit 2
  ;;
esac

pin_bench_threads

export CQ_FT_EPOCHS=${CQ_FT_EPOCHS:-10}
export CQ_DET_EPOCHS=${CQ_DET_EPOCHS:-20}
export CQ_TSNE_ITERS=${CQ_TSNE_ITERS:-200}

if [ ! -x build/bench/micro_kernels ] || [ ! -x build/bench/kernels ] \
   || [ ! -x build/bench/pipeline_alloc ] || [ ! -x build/bench/serve ] \
   || [ ! -x build/bench/threadpool ] || [ ! -x build/bench/search ] \
   || [ ! -x build/bench/vit ]; then
  cmake --preset default
  cmake --build --preset default -j"$(nproc)"
fi

mkdir -p bench_out
for b in table1_imagenet_finetune table2_imagenet_linear table3_detection_transfer \
         table4_cifar_finetune table5_cifar_linear table6_byol_finetune \
         table7_cq_variants table8_cq_quant fig2_tsne ablation_quant_design \
         ext_extensions; do
  out="bench_out/${b}.txt"
  if [ -f "$out" ] && grep -q "^CQ_BENCH_DONE$" "$out"; then
    echo "skip $b (done)"
    continue
  fi
  echo "=== RUNNING $b ==="
  if ./build/bench/$b > "$out.tmp" 2> "bench_out/${b}.err"; then
    echo "CQ_BENCH_DONE" >> "$out.tmp"
    mv "$out.tmp" "$out"
    echo "done $b"
  else
    echo "FAILED $b (see bench_out/${b}.err)"
    mv "$out.tmp" "$out.failed" 2>/dev/null
  fi
done

# Machine-readable baselines live in the repo root so perf drift shows up in
# review diffs. Each regenerates unconditionally (cheap next to the tables).
echo "=== RUNNING json baselines ==="
./build/bench/micro_kernels --gemm_json=BENCH_gemm.json \
  2> bench_out/gemm_json.err && echo "done BENCH_gemm.json" \
  || echo "FAILED BENCH_gemm.json (see bench_out/gemm_json.err)"
./build/bench/pipeline_alloc --json=BENCH_pipeline.json \
  > bench_out/pipeline_json.txt 2>&1 && echo "done BENCH_pipeline.json" \
  || echo "FAILED BENCH_pipeline.json (see bench_out/pipeline_json.txt)"
./build/bench/kernels --json=BENCH_kernels.json \
  2> bench_out/kernels_json.err && echo "done BENCH_kernels.json" \
  || echo "FAILED BENCH_kernels.json (see bench_out/kernels_json.err)"
./build/bench/serve --json=BENCH_serve.json \
  > bench_out/serve_json.txt 2>&1 && echo "done BENCH_serve.json" \
  || echo "FAILED BENCH_serve.json (see bench_out/serve_json.txt)"
./build/bench/compile --json=BENCH_compile.json \
  > bench_out/compile_json.txt 2>&1 && echo "done BENCH_compile.json" \
  || echo "FAILED BENCH_compile.json (see bench_out/compile_json.txt)"
./build/bench/threadpool --json=BENCH_threadpool.json \
  > bench_out/threadpool_json.txt 2>&1 && echo "done BENCH_threadpool.json" \
  || echo "FAILED BENCH_threadpool.json (see bench_out/threadpool_json.txt)"
./build/bench/search --json=BENCH_search.json \
  > bench_out/search_json.txt 2>&1 && echo "done BENCH_search.json" \
  || echo "FAILED BENCH_search.json (see bench_out/search_json.txt)"
./build/bench/vit --json=BENCH_vit.json \
  > bench_out/vit_json.txt 2>&1 && echo "done BENCH_vit.json" \
  || echo "FAILED BENCH_vit.json (see bench_out/vit_json.txt)"
echo ALL_BENCHES_DONE
