// Extension experiments beyond the paper's tables (DESIGN.md Sec. 5 and the
// paper's own "Insights"/future-work pointers):
//   E1 — MoCo (ref [1]) with and without CQ-A: does quantization-as-
//        augmentation transfer to queue-based contrastive learning?
//   E2 — CQ-Noise: Gaussian weight/activation perturbation matched to the
//        quantizer's step size, the "other kinds of perturbations" the
//        paper suggests exploring.
//   E3 — CPT-style cyclic precision schedule (ref [3]) vs the paper's
//        random pair sampling.
#include "bench_common.hpp"
#include "core/moco.hpp"
#include "core/simclr.hpp"

using namespace cq;

namespace {

float linear_acc(models::Encoder& encoder, const core::DatasetBundle& b) {
  return eval::linear_eval(encoder, b.labeled, b.test,
                           bench::linear_config())
      .test_accuracy;
}

}  // namespace

int main() {
  bench::print_preamble(
      "Extensions — MoCo, CQ-Noise, cyclic precision",
      "Linear-eval accuracy on the CIFAR stand-in. Not paper tables; these "
      "probe the paper's generality claims and future-work directions.");

  const auto bundle = core::make_bundle("synth-cifar");
  TableWriter table({"Experiment", "Method", "Linear eval"});

  // E1: MoCo vanilla vs MoCo + CQ-A.
  for (const bool use_cq : {false, true}) {
    auto cfg = bench::standard_pretrain(
        bundle.name, use_cq ? core::CqVariant::kCqA : core::CqVariant::kVanilla,
        quant::PrecisionSet::range(6, 16));
    cfg.byol_ema = 0.95f;  // key-encoder momentum
    cfg.moco_queue = 256;
    auto encoder = bench::pretrained_encoder("resnet18", bundle, cfg, "moco");
    table.add_row({"E1 MoCo", use_cq ? "MoCo + CQ-A" : "MoCo",
                   bench::cell(linear_acc(encoder, bundle))});
  }

  // E2: CQ-C with quantization vs magnitude-matched Gaussian noise.
  for (const bool noise : {false, true}) {
    quant::QuantizerConfig qcfg;
    if (noise) qcfg.perturb = quant::PerturbMode::kGaussian;
    Rng rng(42);
    auto encoder = models::make_encoder("resnet18", rng, qcfg);
    auto cfg = bench::standard_pretrain(bundle.name, core::CqVariant::kCqC,
                                        quant::PrecisionSet::range(6, 16));
    core::SimClrCqTrainer trainer(encoder, cfg);  // uncached (custom qconfig)
    trainer.train(bundle.ssl_train);
    table.add_row({"E2 perturbation type",
                   noise ? "CQ-Noise (Gaussian)" : "CQ-C (quantization)",
                   bench::cell(linear_acc(encoder, bundle))});
  }

  // E3: random pair sampling vs cyclic precision schedule.
  for (const bool cyclic : {false, true}) {
    auto cfg = bench::standard_pretrain(bundle.name, core::CqVariant::kCqC,
                                        quant::PrecisionSet::range(6, 16));
    if (cyclic) {
      cfg.precision_sampling =
          core::PretrainConfig::PrecisionSampling::kCyclic;
      cfg.precision_cycles = 4;
    }
    auto encoder = bench::pretrained_encoder("resnet18", bundle, cfg);
    table.add_row({"E3 precision schedule",
                   cyclic ? "cyclic (CPT-style)" : "random pair (paper)",
                   bench::cell(linear_acc(encoder, bundle))});
  }

  table.print();
  return 0;
}
