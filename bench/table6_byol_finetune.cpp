// Table 6: BYOL vs CQ-C-on-BYOL (precision set 6-16) on the CIFAR stand-in,
// fine-tuned with 10%/1% labels at FP and 4-bit, three networks.
#include "bench_common.hpp"

using namespace cq;

int main() {
  bench::print_preamble(
      "Table 6 — BYOL fine-tuning",
      "Vanilla BYOL vs Contrastive Quant (CQ-C, 6-16) applied on BYOL; "
      "ResNet-18/34 + MobileNetV2.");

  const auto bundle = core::make_bundle("synth-cifar");
  const char* archs[] = {"resnet18", "resnet34", "mobilenetv2"};
  // Paper Table 6 (the paper leaves BYOL's FP cells blank; we measure all
  // four cells for both methods). Reference cells: {fp10, fp1, q10, q1};
  // -1 marks cells the paper does not report.
  const float paper[3][2][4] = {
      {{-1, -1, 55.26f, 34.22f}, {58.84f, 39.21f, 56.74f, 37.54f}},
      {{-1, -1, 65.83f, 50.95f}, {66.77f, 51.91f, 65.21f, 50.55f}},
      {{-1, -1, 49.85f, 23.32f}, {54.59f, 31.96f, 50.97f, 26.60f}},
  };

  TableWriter table({"Network", "Method", "FP 10%", "FP 1%", "4-bit 10%",
                     "4-bit 1%"});
  for (int a = 0; a < 3; ++a) {
    for (int m = 0; m < 2; ++m) {
      const bool is_cq = m == 1;
      auto cfg = bench::standard_pretrain(
          bundle.name,
          is_cq ? core::CqVariant::kCqC : core::CqVariant::kVanilla,
          quant::PrecisionSet::range(6, 16));
      // BYOL needs a slightly gentler LR than NT-Xent training.
      cfg.lr = 0.05f;
      auto encoder =
          bench::pretrained_encoder(archs[a], bundle, cfg, "byol");
      const auto cells = bench::finetune_four(encoder, bundle);
      auto fmt = [&](float measured, float ref) {
        return ref < 0 ? bench::cell(measured) + " (-)"
                       : bench::cell(measured, ref);
      };
      table.add_row({archs[a], is_cq ? "CQ-C" : "BYOL",
                     fmt(cells.fp10, paper[a][m][0]),
                     fmt(cells.fp1, paper[a][m][1]),
                     fmt(cells.q10, paper[a][m][2]),
                     fmt(cells.q1, paper[a][m][3])});
    }
  }
  table.print();
  return 0;
}
