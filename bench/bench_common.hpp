// Shared harness for the table/figure reproduction binaries.
//
// Every bench prints the paper's reference numbers next to the measured
// ones. Absolute values are NOT expected to match (the substrate is a
// scaled-down synthetic stand-in — see DESIGN.md); the *shape* (ordering,
// approximate factors) is what EXPERIMENTS.md tracks.
//
// Environment knobs: CQ_SCALE (dataset sizes), CQ_EPOCHS (pretrain epochs),
// CQ_CACHE_DIR (encoder checkpoint reuse across bench binaries).
#pragma once

#include <cstdio>
#include <string>

#include "core/runner.hpp"
#include "eval/classifier.hpp"
#include "util/table.hpp"

namespace cq::bench {

/// Standard pretraining recipe for a dataset stand-in (tuned so vanilla
/// SimCLR comfortably beats random init; see tools/tune.cpp history).
inline core::PretrainConfig standard_pretrain(const std::string& dataset,
                                              core::CqVariant variant,
                                              quant::PrecisionSet precisions =
                                                  quant::PrecisionSet::range(
                                                      6, 16)) {
  core::PretrainConfig cfg;
  cfg.variant = variant;
  cfg.precisions = std::move(precisions);
  cfg.batch_size = 32;
  cfg.lr = 0.1f;
  cfg.warmup_epochs = 1;
  cfg.proj_hidden = 32;
  cfg.proj_dim = 16;
  cfg.tau = 0.5f;
  const std::int64_t base_epochs = 10;
  cfg.epochs = core::env_int("CQ_EPOCHS", base_epochs);
  cfg.seed = 7;
  return cfg;
}

inline eval::EvalConfig finetune_config(int bits) {
  eval::EvalConfig cfg;
  cfg.epochs = static_cast<std::int64_t>(core::env_int("CQ_FT_EPOCHS", 15));
  cfg.batch_size = 16;
  cfg.lr = 0.02f;
  cfg.eval_bits = bits;
  return cfg;
}

inline eval::EvalConfig linear_config() {
  eval::EvalConfig cfg;
  cfg.epochs = 30;
  cfg.batch_size = 32;
  cfg.lr = 0.05f;
  return cfg;
}

/// Pretrain (or load from cache) an encoder for (arch, bundle, config).
inline models::Encoder pretrained_encoder(const std::string& arch,
                                          const core::DatasetBundle& bundle,
                                          const core::PretrainConfig& config,
                                          const std::string& family =
                                              "simclr",
                                          core::PretrainStats* stats_out =
                                              nullptr) {
  Rng rng(42);  // fixed init seed: methods differ only in the SSL recipe
  auto encoder = models::make_encoder(arch, rng);
  const auto result = core::pretrain_cached(encoder, config, bundle, family);
  if (stats_out != nullptr) *stats_out = result.stats;
  return encoder;
}

/// The four fine-tuning cells of the paper's tables: FP/4-bit x 10%/1%.
struct FinetuneCells {
  float fp10 = 0.0f, fp1 = 0.0f, q10 = 0.0f, q1 = 0.0f;
  bool failed = false;  // pretraining diverged; cells are meaningless
};

inline FinetuneCells finetune_four(models::Encoder& encoder,
                                   const core::DatasetBundle& bundle,
                                   std::uint64_t split_seed = 77) {
  Rng split_rng(split_seed);
  const auto lab10 = data::subset_fraction(bundle.labeled, 0.10, split_rng);
  const auto lab1 = data::subset_fraction(bundle.labeled, 0.01, split_rng);
  FinetuneCells cells;
  cells.fp10 = eval::finetune_eval(encoder, lab10, bundle.test,
                                   finetune_config(32))
                   .test_accuracy;
  cells.fp1 =
      eval::finetune_eval(encoder, lab1, bundle.test, finetune_config(32))
          .test_accuracy;
  cells.q10 = eval::finetune_eval(encoder, lab10, bundle.test,
                                  finetune_config(4))
                  .test_accuracy;
  cells.q1 =
      eval::finetune_eval(encoder, lab1, bundle.test, finetune_config(4))
          .test_accuracy;
  return cells;
}

/// "measured (paper ref)" cell formatting.
inline std::string cell(float measured, float paper) {
  return TableWriter::num(measured, 1) + " (" + TableWriter::num(paper, 2) +
         ")";
}

inline std::string cell(float measured) {
  return TableWriter::num(measured, 1);
}

inline void print_preamble(const std::string& table_id,
                           const std::string& description) {
  std::printf("==== %s ====\n%s\n", table_id.c_str(), description.c_str());
  std::printf(
      "Cells show: measured-on-synthetic (paper reference). Absolute values "
      "are not comparable;\nthe tracked claim is the ordering/shape — see "
      "EXPERIMENTS.md.\n\n");
}

}  // namespace cq::bench
