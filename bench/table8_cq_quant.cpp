// Table 8: CQ-Quant — quantization as the ONLY augmentation (Sec. 4.5) —
// vs the no-SSL baseline, on ResNet-74/110 with precision sets 6-16 / 8-16.
#include "bench_common.hpp"

using namespace cq;

int main() {
  bench::print_preamble(
      "Table 8 — CQ-Quant (quantization-only augmentation)",
      "Loss = NCE(f1, f2): same un-augmented input through two sampled "
      "precisions. Compared against 'No SSL Training' (random init). "
      "Wider precision sets should help (diversity of augmentation).");

  const auto bundle = core::make_bundle("synth-cifar");
  Rng split_rng(77);
  const auto lab10 = data::subset_fraction(bundle.labeled, 0.10, split_rng);
  const auto lab1 = data::subset_fraction(bundle.labeled, 0.01, split_rng);

  const char* archs[] = {"resnet74", "resnet110"};
  // Paper Table 8: rows {6-16, 8-16, no-SSL}; cols {ft1%, ft10%, linear}.
  const float paper[2][3][3] = {
      {{7.64f, 29.14f, 15.79f},
       {4.64f, 21.37f, 10.98f},
       {2.90f, 20.76f, 3.69f}},
      {{7.43f, 27.69f, 14.10f},
       {6.41f, 21.58f, 11.83f},
       {2.21f, 20.56f, 3.15f}},
  };

  TableWriter table({"Network", "Precision Set", "FT 1%", "FT 10%",
                     "Linear eval"});
  for (int a = 0; a < 2; ++a) {
    for (int s = 0; s < 3; ++s) {
      models::Encoder encoder = [&]() {
        if (s == 2) {  // No SSL training: random init.
          Rng rng(42);
          return models::make_encoder(archs[a], rng);
        }
        auto cfg = bench::standard_pretrain(
            bundle.name, core::CqVariant::kCqQuant,
            s == 0 ? quant::PrecisionSet::range(6, 16)
                   : quant::PrecisionSet::range(8, 16));
        cfg.augment.identity = true;  // Sec 4.5: no input augmentation
        return bench::pretrained_encoder(archs[a], bundle, cfg);
      }();

      const float ft1 = eval::finetune_eval(encoder, lab1, bundle.test,
                                            bench::finetune_config(32))
                            .test_accuracy;
      const float ft10 = eval::finetune_eval(encoder, lab10, bundle.test,
                                             bench::finetune_config(32))
                             .test_accuracy;
      const float lin = eval::linear_eval(encoder, bundle.labeled,
                                          bundle.test,
                                          bench::linear_config())
                            .test_accuracy;
      const char* set_names[] = {"6-16", "8-16", "No SSL Training"};
      table.add_row({archs[a], set_names[s],
                     bench::cell(ft1, paper[a][s][0]),
                     bench::cell(ft10, paper[a][s][1]),
                     bench::cell(lin, paper[a][s][2])});
    }
  }
  table.print();
  return 0;
}
