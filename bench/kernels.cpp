// Kernel-layer bench: measures what the SIMD kernel layer (DESIGN.md Sec. 9)
// buys over the seed's scalar implementations and regenerates the repo-root
// BENCH_kernels.json. Three sections:
//
//   fused     Linear-forward pipeline: blocked GEMM, then the seed's
//             at()-indexed bias pass, then a separate ReLU pass (literally
//             the replaced implementation) vs ONE fused GEMM carrying a
//             bias+ReLU epilogue. Bit-identity is asserted before timing.
//
//   qpack     quantize-on-pack: seed-style scalar Eq. 10 loop materializing
//             a quantized weight tensor then GEMM, vs a single GEMM with the
//             QuantSpec folded into B-packing. Asserted bit-identical to
//             kernels::quantize + GEMM (and to the scalar loop).
//
//   kernels   per-kernel GB/s: seed-style scalar loop vs the VecF kernel,
//             with backend-vs-portable bitwise equivalence asserted first.
//
// Flags: --json=PATH writes the JSON report (BENCH_kernels.json in the repo
// root is generated this way; see run_benches.sh); --smoke runs tiny shapes
// and the equivalence checks only — wired as the `kernels_smoke` ctest
// (label `bench`) so CI catches bench bitrot cheaply.
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "quant/quantizer.hpp"
#include "tensor/gemm.hpp"
#include "tensor/kernels/hamming.hpp"
#include "tensor/kernels/kernels.hpp"
#include "tensor/tensor.hpp"
#include "util/timer.hpp"

namespace {

using namespace cq;

int g_failures = 0;

/// Keep `p`'s pointee alive past optimization (the bench has no
/// google-benchmark runner, so DoNotOptimize is hand-rolled).
void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

bool bitwise_equal(const float* a, const float* b, std::int64_t n) {
  return std::memcmp(a, b, static_cast<std::size_t>(n) * sizeof(float)) == 0;
}

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL %s\n", what);
    ++g_failures;
  }
}

/// Best-of-3 seconds per call; each run calibrated to ~`target` seconds so
/// small shapes aren't all timer noise. Smoke mode passes target = 0 (one
/// rep — correctness is the point there, not the numbers).
template <class F>
double time_best(F&& fn, double target) {
  fn();  // warm
  Timer cal;
  fn();
  const double once = std::max(cal.seconds(), 1e-7);
  const int reps = std::max<int>(1, static_cast<int>(target / once));
  double best = 1e300;
  for (int run = 0; run < 3; ++run) {
    Timer t;
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, t.seconds() / reps);
  }
  return best;
}

// ---- fused Linear-forward vs the seed pipeline -----------------------------

/// The replaced seed implementation of Linear::forward + ReLU: blocked GEMM
/// into y, bias added through the bounds-checked at() accessor, activation as
/// a separate pass into a fresh tensor (what nn::ReLU::forward did).
Tensor seed_linear_relu(const Tensor& x, const Tensor& w, const Tensor& b) {
  const std::int64_t m = x.dim(0), n = w.dim(0), k = w.dim(1);
  Tensor y = Tensor::empty(Shape{m, n});
  gemm::gemm(gemm::Trans::kNT, m, n, k, x.data(), w.data(), y.data());
  for (std::int64_t r = 0; r < m; ++r)
    for (std::int64_t c = 0; c < n; ++c) y.at(r, c) += b[c];
  Tensor z = Tensor::empty(y.shape());
  const float* yp = std::as_const(y).data();
  float* zp = z.data();
  for (std::int64_t i = 0; i < m * n; ++i) zp[i] = yp[i] > 0.0f ? yp[i] : 0.0f;
  return z;
}

struct FusedCase {
  std::string name;
  std::int64_t m, n, k;
  double base_s = 0.0, fused_s = 0.0, flops = 0.0;
};

FusedCase bench_fused_linear(std::int64_t m, std::int64_t n, std::int64_t k,
                             bool smoke, Rng& rng) {
  Tensor x = Tensor::randn(Shape{m, k}, rng);
  Tensor w = Tensor::randn(Shape{n, k}, rng);
  Tensor b = Tensor::randn(Shape{n}, rng);
  gemm::Epilogue ep;
  ep.bias = std::as_const(b).data();
  ep.bias_kind = gemm::Epilogue::Bias::kPerCol;
  ep.act = gemm::Epilogue::Act::kRelu;

  Tensor ref = seed_linear_relu(x, w, b);
  Tensor y(Shape{m, n});
  gemm::gemm(gemm::Trans::kNT, m, n, k, x.data(), w.data(), y.data(),
             /*accumulate=*/false, ep);
  check(bitwise_equal(std::as_const(y).data(), std::as_const(ref).data(),
                      m * n),
        "fused linear epilogue != seed gemm+bias+relu pipeline (bitwise)");

  const double target = smoke ? 0.0 : 0.1;
  FusedCase c{"linear_fwd_bias_relu", m, n, k};
  c.flops = 2.0 * double(m) * double(n) * double(k);
  c.base_s = time_best(
      [&] { Tensor z = seed_linear_relu(x, w, b); escape(z.data()); }, target);
  c.fused_s = time_best(
      [&] {
        gemm::gemm(gemm::Trans::kNT, m, n, k, x.data(), w.data(), y.data(),
                   false, ep);
        escape(y.data());
      },
      target);
  return c;
}

// ---- quantize-on-pack vs materialize-then-GEMM -----------------------------

FusedCase bench_quantized_pack(std::int64_t m, std::int64_t n, std::int64_t k,
                               int bits, bool smoke, Rng& rng) {
  Tensor x = Tensor::randn(Shape{m, k}, rng);
  Tensor w = Tensor::randn(Shape{n, k}, rng);
  const quant::LinearQuantizer quantizer;
  const gemm::QuantSpec q = quantizer.make_spec(w, bits);

  // Seed-style materialization: a fresh quantized copy of W every forward,
  // through the scalar Eq. 10 loop the seed quantizer ran.
  auto materialize = [&] {
    Tensor wq = Tensor::empty(w.shape());
    const float* wp = w.data();
    float* qp = wq.data();
    for (std::int64_t i = 0; i < w.numel(); ++i)
      qp[i] = q.step * std::nearbyint(wp[i] * q.inv_step);
    return wq;
  };

  // Equivalence: packed-quantized GEMM == materialize-then-GEMM, bitwise,
  // for both the seed scalar loop and kernels::quantize materialization.
  Tensor wq = materialize();
  Tensor wq2 = Tensor::empty(w.shape());
  kernels::quantize(w.data(), wq2.data(), w.numel(), q);
  check(bitwise_equal(std::as_const(wq).data(), std::as_const(wq2).data(),
                      w.numel()),
        "kernels::quantize != seed scalar Eq. 10 loop (bitwise)");
  Tensor ref(Shape{m, n}), y(Shape{m, n});
  gemm::gemm(gemm::Trans::kNT, m, n, k, x.data(), wq.data(), ref.data());
  gemm::gemm(gemm::Trans::kNT, m, n, k, x.data(), w.data(), y.data(), false,
             gemm::Epilogue{}, nullptr, &q);
  check(bitwise_equal(std::as_const(y).data(), std::as_const(ref).data(),
                      m * n),
        "quantize-on-pack GEMM != materialize-then-GEMM (bitwise)");

  const double target = smoke ? 0.0 : 0.1;
  char name[64];
  std::snprintf(name, sizeof(name), "quantized_pack_gemm_b%d", bits);
  FusedCase c{name, m, n, k};
  c.flops = 2.0 * double(m) * double(n) * double(k);
  c.base_s = time_best(
      [&] {
        Tensor wm = materialize();
        gemm::gemm(gemm::Trans::kNT, m, n, k, x.data(), wm.data(), ref.data());
        escape(ref.data());
      },
      target);
  c.fused_s = time_best(
      [&] {
        gemm::gemm(gemm::Trans::kNT, m, n, k, x.data(), w.data(), y.data(),
                   false, gemm::Epilogue{}, nullptr, &q);
        escape(y.data());
      },
      target);
  return c;
}

// ---- per-kernel GB/s vs seed-style scalar loops ----------------------------

struct KernelCase {
  std::string name;
  std::int64_t n;
  double bytes = 0.0, base_s = 0.0, simd_s = 0.0;
};

template <class Base, class Simd, class Equiv>
KernelCase bench_kernel(const char* name, std::int64_t n, double bytes,
                        Base&& base, Simd&& simd, Equiv&& equiv, bool smoke) {
  equiv();
  const double target = smoke ? 0.0 : 0.05;
  KernelCase c{name, n, bytes};
  c.base_s = time_best(base, target);
  c.simd_s = time_best(simd, target);
  return c;
}

std::vector<KernelCase> bench_kernels(bool smoke, Rng& rng) {
  const std::int64_t n = smoke ? 1011 : 1 << 16;  // odd smoke size: tails
  const std::int64_t rows = smoke ? 7 : 256, cols = smoke ? 13 : 256;
  Tensor x = Tensor::randn(Shape{n}, rng);
  Tensor y(Shape{n}), y2(Shape{n});
  const float* xp = x.data();
  float* yp = y.data();
  float* y2p = y2.data();
  std::vector<KernelCase> out;

  auto check_pair = [&](const char* what) {
    check(bitwise_equal(yp, y2p, n), what);
  };

  out.push_back(bench_kernel(
      "vexp", n, 8.0 * n,
      [&] {
        for (std::int64_t i = 0; i < n; ++i) yp[i] = std::exp(xp[i]);
        escape(yp);
      },
      [&] {
        kernels::vexp(xp, yp, n);
        escape(yp);
      },
      [&] {
        kernels::vexp(xp, yp, n);
        kernels::scalar::vexp(xp, y2p, n);
        check_pair("vexp backend != portable (bitwise)");
      },
      smoke));

  out.push_back(bench_kernel(
      "relu", n, 8.0 * n,
      [&] {
        for (std::int64_t i = 0; i < n; ++i)
          yp[i] = xp[i] > 0.0f ? xp[i] : 0.0f;
        escape(yp);
      },
      [&] {
        kernels::relu(xp, yp, n);
        escape(yp);
      },
      [&] {
        kernels::relu(xp, yp, n);
        kernels::scalar::relu(xp, y2p, n);
        check_pair("relu backend != portable (bitwise)");
      },
      smoke));

  {
    const gemm::QuantSpec q = quant::LinearQuantizer().make_spec(x, 4);
    out.push_back(bench_kernel(
        "quantize", n, 8.0 * n,
        [&] {
          for (std::int64_t i = 0; i < n; ++i)
            yp[i] = q.step * std::nearbyint(xp[i] * q.inv_step);
          escape(yp);
        },
        [&] {
          kernels::quantize(xp, yp, n, q);
          escape(yp);
        },
        [&] {
          kernels::quantize(xp, yp, n, q);
          kernels::scalar::quantize(xp, y2p, n, q);
          check_pair("quantize backend != portable (bitwise)");
        },
        smoke));
  }

  {
    Tensor mat = Tensor::randn(Shape{rows, cols}, rng);
    Tensor m1 = mat, m2 = mat;  // COW copies, detached on data()
    float* a = m1.data();
    float* b = m2.data();
    const std::int64_t mn = rows * cols;
    out.push_back(bench_kernel(
        "softmax_rows", mn, 16.0 * mn,
        [&] {
          std::memcpy(a, std::as_const(mat).data(), mn * sizeof(float));
          for (std::int64_t r = 0; r < rows; ++r) {
            float* row = a + r * cols;
            float mx = row[0];
            for (std::int64_t c = 1; c < cols; ++c)
              mx = row[c] > mx ? row[c] : mx;
            float s = 0.0f;
            for (std::int64_t c = 0; c < cols; ++c) {
              row[c] = std::exp(row[c] - mx);
              s += row[c];
            }
            const float inv = 1.0f / s;
            for (std::int64_t c = 0; c < cols; ++c) row[c] *= inv;
          }
          escape(a);
        },
        [&] {
          std::memcpy(a, std::as_const(mat).data(), mn * sizeof(float));
          kernels::softmax_rows(a, rows, cols);
          escape(a);
        },
        [&] {
          std::memcpy(a, std::as_const(mat).data(), mn * sizeof(float));
          std::memcpy(b, std::as_const(mat).data(), mn * sizeof(float));
          kernels::softmax_rows(a, rows, cols);
          kernels::scalar::softmax_rows(b, rows, cols);
          check(bitwise_equal(a, b, mn),
                "softmax_rows backend != portable (bitwise)");
        },
        smoke));

    out.push_back(bench_kernel(
        "l2_normalize_rows", mn, 12.0 * mn,
        [&] {
          std::memcpy(a, std::as_const(mat).data(), mn * sizeof(float));
          for (std::int64_t r = 0; r < rows; ++r) {
            float* row = a + r * cols;
            float ss = 0.0f;
            for (std::int64_t c = 0; c < cols; ++c) ss += row[c] * row[c];
            const float norm = std::sqrt(ss);
            if (norm > 1e-12f) {
              const float inv = 1.0f / norm;
              for (std::int64_t c = 0; c < cols; ++c) row[c] *= inv;
            }
          }
          escape(a);
        },
        [&] {
          std::memcpy(a, std::as_const(mat).data(), mn * sizeof(float));
          kernels::l2_normalize_rows(a, rows, cols, nullptr, 1e-12f);
          escape(a);
        },
        [&] {
          std::memcpy(a, std::as_const(mat).data(), mn * sizeof(float));
          std::memcpy(b, std::as_const(mat).data(), mn * sizeof(float));
          kernels::l2_normalize_rows(a, rows, cols, nullptr, 1e-12f);
          kernels::scalar::l2_normalize_rows(b, rows, cols, nullptr, 1e-12f);
          check(bitwise_equal(a, b, mn),
                "l2_normalize_rows backend != portable (bitwise)");
        },
        smoke));
  }

  {
    Tensor p0 = Tensor::randn(Shape{n}, rng);
    Tensor g = Tensor::randn(Shape{n}, rng);
    Tensor p = p0, v = Tensor::zeros(Shape{n});
    float* pp = p.data();
    float* vp = v.data();
    const float* gp = g.data();
    const float lr = 0.1f, mom = 0.9f, wd = 1e-4f, gs = 0.5f;
    out.push_back(bench_kernel(
        "sgd_update", n, 20.0 * n,
        [&] {
          for (std::int64_t i = 0; i < n; ++i) {
            const float gg = gs * gp[i] + wd * pp[i];
            vp[i] = mom * vp[i] + gg;
            pp[i] -= lr * vp[i];
          }
          escape(pp);
        },
        [&] {
          kernels::sgd_update(pp, gp, vp, n, lr, mom, wd, gs);
          escape(pp);
        },
        [&] {
          Tensor pa = p0, pb = p0;
          Tensor va = Tensor::zeros(Shape{n}), vb = Tensor::zeros(Shape{n});
          kernels::sgd_update(pa.data(), gp, va.data(), n, lr, mom, wd, gs);
          kernels::scalar::sgd_update(pb.data(), gp, vb.data(), n, lr, mom,
                                      wd, gs);
          check(bitwise_equal(std::as_const(pa).data(),
                              std::as_const(pb).data(), n) &&
                    bitwise_equal(std::as_const(va).data(),
                                  std::as_const(vb).data(), n),
                "sgd_update backend != portable (bitwise)");
        },
        smoke));

    Tensor m = Tensor::zeros(Shape{n}), vv = Tensor::zeros(Shape{n});
    float* mp = m.data();
    float* vvp = vv.data();
    const float b1 = 0.9f, b2 = 0.999f, eps = 1e-8f;
    const float bc1 = 1.0f - std::pow(b1, 3), bc2 = 1.0f - std::pow(b2, 3);
    out.push_back(bench_kernel(
        "adam_update", n, 28.0 * n,
        [&] {
          for (std::int64_t i = 0; i < n; ++i) {
            const float gg = gp[i] + wd * pp[i];
            mp[i] = b1 * mp[i] + (1.0f - b1) * gg;
            vvp[i] = b2 * vvp[i] + ((1.0f - b2) * gg) * gg;
            const float mhat = mp[i] / bc1;
            const float vhat = vvp[i] / bc2;
            pp[i] -= (lr * mhat) / (std::sqrt(vhat) + eps);
          }
          escape(pp);
        },
        [&] {
          kernels::adam_update(pp, gp, mp, vvp, n, lr, b1, b2, eps, wd, bc1,
                               bc2);
          escape(pp);
        },
        [&] {
          Tensor pa = p0, pb = p0;
          Tensor ma = Tensor::zeros(Shape{n}), mb = Tensor::zeros(Shape{n});
          Tensor va = Tensor::zeros(Shape{n}), vb = Tensor::zeros(Shape{n});
          kernels::adam_update(pa.data(), gp, ma.data(), va.data(), n, lr, b1,
                               b2, eps, wd, bc1, bc2);
          kernels::scalar::adam_update(pb.data(), gp, mb.data(), vb.data(), n,
                                       lr, b1, b2, eps, wd, bc1, bc2);
          check(bitwise_equal(std::as_const(pa).data(),
                              std::as_const(pb).data(), n),
                "adam_update backend != portable (bitwise)");
        },
        smoke));
  }

  {
    // Bit-population reduction over packed u64 codes (the search layer's
    // Hamming substrate): seed-style std::popcount loop vs the SWAR/AVX2
    // block reduction.
    std::vector<std::uint64_t> words(static_cast<std::size_t>(n));
    Rng wrng(0xB17C0DE);
    for (auto& w : words) w = wrng.next_u64();
    std::uint64_t sum = 0;
    out.push_back(bench_kernel(
        "popcount_u64", n, 8.0 * n,
        [&] {
          sum = 0;
          for (std::int64_t i = 0; i < n; ++i)
            sum += static_cast<std::uint64_t>(
                std::popcount(words[static_cast<std::size_t>(i)]));
          escape(&sum);
        },
        [&] {
          sum = kernels::popcount_u64(words.data(), n);
          escape(&sum);
        },
        [&] {
          check(kernels::popcount_u64(words.data(), n) ==
                    kernels::scalar::popcount_u64(words.data(), n),
                "popcount_u64 backend != portable");
        },
        smoke));
  }

  return out;
}

// ---- report ----------------------------------------------------------------

int run(const std::string& path, bool smoke) {
  Rng rng(0xC0DE);
  std::vector<FusedCase> fused;
  // Head-shaped forwards where the seed's separate bias/activation passes
  // are a real fraction of the runtime (small-k projection layers), plus a
  // deeper layer for context.
  if (smoke) {
    fused.push_back(bench_fused_linear(5, 9, 13, smoke, rng));
    fused.push_back(bench_quantized_pack(5, 9, 13, 4, smoke, rng));
  } else {
    fused.push_back(bench_fused_linear(128, 512, 64, smoke, rng));
    fused.push_back(bench_fused_linear(64, 256, 32, smoke, rng));
    fused.push_back(bench_quantized_pack(32, 512, 512, 4, smoke, rng));
    fused.push_back(bench_quantized_pack(32, 512, 512, 8, smoke, rng));
  }
  std::vector<KernelCase> kernels_ = bench_kernels(smoke, rng);

  std::string body;
  char line[512];
  for (std::size_t i = 0; i < fused.size(); ++i) {
    const FusedCase& c = fused[i];
    const double speedup = c.base_s / c.fused_s;
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"m\": %lld, \"n\": %lld, "
                  "\"k\": %lld, \"unfused_gflops\": %.3f, "
                  "\"fused_gflops\": %.3f, \"speedup\": %.2f}%s\n",
                  c.name.c_str(), static_cast<long long>(c.m),
                  static_cast<long long>(c.n), static_cast<long long>(c.k),
                  c.flops / c.base_s / 1e9, c.flops / c.fused_s / 1e9,
                  speedup, i + 1 < fused.size() ? "," : "");
    body += line;
    std::fprintf(stderr,
                 "%-24s m=%-4lld n=%-4lld k=%-4lld  unfused %8.3f  fused "
                 "%8.3f GFLOP/s  (%.2fx)\n",
                 c.name.c_str(), static_cast<long long>(c.m),
                 static_cast<long long>(c.n), static_cast<long long>(c.k),
                 c.flops / c.base_s / 1e9, c.flops / c.fused_s / 1e9, speedup);
  }
  std::string kbody;
  for (std::size_t i = 0; i < kernels_.size(); ++i) {
    const KernelCase& c = kernels_[i];
    const double speedup = c.base_s / c.simd_s;
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"n\": %lld, "
                  "\"scalar_gbps\": %.3f, \"simd_gbps\": %.3f, "
                  "\"speedup\": %.2f}%s\n",
                  c.name.c_str(), static_cast<long long>(c.n),
                  c.bytes / c.base_s / 1e9, c.bytes / c.simd_s / 1e9, speedup,
                  i + 1 < kernels_.size() ? "," : "");
    kbody += line;
    std::fprintf(stderr,
                 "%-24s n=%-8lld  scalar %8.3f  simd %8.3f GB/s  (%.2fx)\n",
                 c.name.c_str(), static_cast<long long>(c.n),
                 c.bytes / c.base_s / 1e9, c.bytes / c.simd_s / 1e9, speedup);
  }

  std::string json;
  json += "{\n";
  json += "  \"bench\": \"kernels\",\n";
  std::snprintf(line, sizeof(line),
                "  \"backend\": \"%s\",\n  \"simd_width\": %d,\n",
                kernels::backend(), kernels::simd_width());
  json += line;
  json += "  \"regenerate\": \"build/bench/kernels "
          "--json=BENCH_kernels.json\",\n";
  json += "  \"unfused_baseline\": \"seed pipeline: blocked gemm + "
          "at()-indexed bias pass + separate relu pass; quantized baseline "
          "materializes the weight through the seed scalar Eq. 10 loop\",\n";
  json += "  \"fused_cases\": [\n" + body + "  ],\n";
  json += "  \"kernel_cases\": [\n" + kbody + "  ]\n}\n";
  if (!path.empty()) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    out << json;
  }
  if (g_failures) {
    std::fprintf(stderr, "%d equivalence check(s) FAILED\n", g_failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: kernels [--json=PATH] [--smoke]\n");
      return 2;
    }
  }
  return run(json, smoke);
}
