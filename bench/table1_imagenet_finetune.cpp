// Table 1: SimCLR vs CQ-A (6-16) vs CQ-C (8-16) on the ImageNet stand-in,
// fine-tuned with 10%/1% labels at FP and 4-bit.
#include "bench_common.hpp"

using namespace cq;

namespace {

struct PaperRow {
  const char* method;
  float fp10, fp1, q10, q1;
};

struct Method {
  const char* name;
  core::CqVariant variant;
  int lo, hi;  // precision set
};

}  // namespace

int main() {
  bench::print_preamble(
      "Table 1 — ImageNet fine-tuning",
      "SimCLR vs Contrastive Quant (CQ-A 6-16, CQ-C 8-16) on ResNet-18/34; "
      "semi-supervised fine-tuning.");

  const auto bundle = core::make_bundle("synth-imagenet");
  const Method methods[] = {
      {"SimCLR", core::CqVariant::kVanilla, 0, 0},
      {"CQ-A", core::CqVariant::kCqA, 6, 16},
      {"CQ-C", core::CqVariant::kCqC, 8, 16},
  };
  // Paper Table 1 reference values.
  const PaperRow paper_r18[] = {{"SimCLR", 42.44f, 19.18f, 39.12f, 17.24f},
                                {"CQ-A", 51.39f, 28.87f, 48.80f, 27.13f},
                                {"CQ-C", 51.13f, 28.97f, 48.63f, 26.66f}};
  const PaperRow paper_r34[] = {{"SimCLR", 47.53f, 23.43f, 44.65f, 21.69f},
                                {"CQ-A", 55.76f, 33.37f, 53.32f, 31.30f},
                                {"CQ-C", 55.72f, 33.70f, 53.33f, 31.64f}};

  TableWriter table({"Network", "Method", "Precision Set", "FP 10%", "FP 1%",
                     "4-bit 10%", "4-bit 1%"});
  const char* archs[] = {"resnet18", "resnet34"};
  for (int a = 0; a < 2; ++a) {
    const PaperRow* paper = (a == 0) ? paper_r18 : paper_r34;
    for (int m = 0; m < 3; ++m) {
      const auto& method = methods[m];
      auto cfg = bench::standard_pretrain(
          bundle.name, method.variant,
          method.lo > 0 ? quant::PrecisionSet::range(method.lo, method.hi)
                        : quant::PrecisionSet());
      auto encoder = bench::pretrained_encoder(archs[a], bundle, cfg);
      const auto cells = bench::finetune_four(encoder, bundle);
      table.add_row({archs[a], method.name,
                     method.lo > 0 ? (std::to_string(method.lo) + "-" +
                                      std::to_string(method.hi))
                                   : "-",
                     bench::cell(cells.fp10, paper[m].fp10),
                     bench::cell(cells.fp1, paper[m].fp1),
                     bench::cell(cells.q10, paper[m].q10),
                     bench::cell(cells.q1, paper[m].q1)});
    }
  }
  table.print();
  return 0;
}
