// Figure 2: t-SNE visualization of the learned representations — SimCLR vs
// Contrastive Quant (CQ-C). Emits the embeddings as CSV (point clouds for
// plotting) plus quantitative separability metrics, since "better linear
// separability" should be measurable, not just visual.
#include "bench_common.hpp"
#include "eval/separability.hpp"
#include "eval/tsne.hpp"
#include "util/csv.hpp"

using namespace cq;

int main() {
  bench::print_preamble(
      "Figure 2 — t-SNE of learned representations",
      "Embeddings written to fig2_<method>_<arch>.csv; the table reports "
      "silhouette score and kNN accuracy of the 2-D embeddings (higher = "
      "more separable, the paper's qualitative claim).");

  const auto bundle = core::make_bundle("synth-cifar");
  const char* archs[] = {"resnet18", "resnet34"};

  TableWriter table({"Network", "Method", "silhouette", "kNN acc (2-D)",
                     "kNN acc (feature)"});
  for (const char* arch : archs) {
    for (int m = 0; m < 2; ++m) {
      const bool is_cq = m == 1;
      auto cfg = bench::standard_pretrain(
          bundle.name,
          is_cq ? core::CqVariant::kCqC : core::CqVariant::kVanilla,
          is_cq ? quant::PrecisionSet::range(6, 16) : quant::PrecisionSet());
      auto encoder = bench::pretrained_encoder(arch, bundle, cfg);
      const Tensor features =
          eval::extract_features(encoder, bundle.test, 32);

      eval::TsneConfig tsne_cfg;
      tsne_cfg.perplexity = 12.0;
      tsne_cfg.iterations = core::env_int("CQ_TSNE_ITERS", 300);
      const Tensor embedding = eval::tsne(features, tsne_cfg);

      const std::string method = is_cq ? "cqc" : "simclr";
      CsvWriter csv("fig2_" + method + "_" + arch + ".csv",
                    {"x", "y", "label"});
      for (std::int64_t i = 0; i < embedding.dim(0); ++i)
        csv.add_row(std::vector<double>{
            embedding.at(i, 0), embedding.at(i, 1),
            static_cast<double>(
                bundle.test.labels[static_cast<std::size_t>(i)])});
      csv.close();

      table.add_row(
          {arch, is_cq ? "CQ-C" : "SimCLR",
           TableWriter::num(eval::silhouette_score(embedding,
                                                   bundle.test.labels),
                            3),
           bench::cell(eval::knn_accuracy(embedding, bundle.test.labels, 5)),
           bench::cell(eval::knn_accuracy(features, bundle.test.labels, 5))});
    }
  }
  table.print();
  std::printf(
      "\nPaper's Fig. 2 shows CQ-C clusters visibly tighter than SimCLR's, "
      "especially for larger models;\nhere the silhouette / kNN columns "
      "quantify the same comparison.\n");
  return 0;
}
