// Transformer-encoder bench (DESIGN.md §16): regenerates the repo-root
// BENCH_vit.json. Three sections:
//
//   attn     attention-shaped GEMM throughput: the score product Q K^T
//            (kNT, [seq, dh] x [seq, dh]) and the value product A V (kNN,
//            [seq, seq] x [seq, dh]) at transformer head shapes. GFLOP/s
//            absolutes for the table; not gated (host-dependent).
//
//   forward  compiled-vs-eager ViT forward at serving batch: the static
//            plan (arena + prepacked B + fused epilogues) against the eager
//            module tree, fp32 and int8. The fp32 speedup is the gated
//            same-host ratio; the int8 plan rides the igemm path the conv
//            backbones already gate.
//
//   ptq      the CPT-V story: a CQ-pretrained ViT's embeddings are
//            quantized to int8 three ways — fp32 reference, naive min-max
//            scales, and CPT-V contrastive calibration (quant/ptq.hpp) —
//            and each variant retrieves against the fp32 cosine top-10
//            ground truth. A deployment-recovery leg miscalibrates a plan
//            (stale per-tensor scales) and re-applies the calibrated
//            ScaleTable, which must land bitwise on the calibrated plan.
//            The headline gate: CPT-V recall@10 within 2% of fp32
//            (ROADMAP.md), recovery bitwise, and byte-identical scale
//            tables across two independent calibrations (the determinism
//            contract).
//
// Protocol: bitwise equivalence gates run before any timing — compiled fp32
// plan vs the eager module tree, and pool-size 1 vs 2 parity of the int8
// plan. A mismatch fails the bench; "bitwise_equivalent" is a gated
// baseline metric.
//
// Flags: --json=PATH writes the report; --smoke runs the gates + a tiny
// calibration determinism check only (the `vit_bench_smoke` ctest, label
// `bench`).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/threadpool.hpp"
#include "graph/executor.hpp"
#include "quant/ptq.hpp"
#include "search/recall.hpp"
#include "tensor/gemm.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace cq;

int g_failures = 0;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL %s\n", what);
    ++g_failures;
  }
}

/// Best-of-3 seconds per call, calibrated to ~`target` seconds per run.
template <class F>
double time_best(F&& fn, double target) {
  fn();  // warm
  Timer cal;
  fn();
  const double once = std::max(cal.seconds(), 1e-7);
  const int reps = std::max<int>(1, static_cast<int>(target / once));
  double best = 1e300;
  for (int run = 0; run < 3; ++run) {
    Timer t;
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, t.seconds() / reps);
  }
  return best;
}

constexpr std::int64_t kImg = 16;
constexpr std::int64_t kTopK = 10;

models::Encoder fresh_vit(std::uint64_t seed) {
  Rng rng(seed);
  auto enc = models::make_encoder("vit", rng);
  enc.policy->set_full_precision();
  enc.backbone->set_mode(nn::Mode::kEval);
  return enc;
}

graph::CompiledModel compile_vit(models::Encoder& enc,
                                 std::int64_t max_batch,
                                 graph::Precision precision) {
  return graph::compile(*enc.backbone, Shape{3, kImg, kImg},
                        graph::CompileOptions{max_batch, precision,
                                              /*run_passes=*/true});
}

// ---- equivalence gates -----------------------------------------------------

/// Compiled fp32 == eager bitwise at several widths, and pool-size 1 vs 2
/// parity of the int8 plan. Runs before any timing.
bool equivalence_gate(models::Encoder& enc) {
  auto fp = compile_vit(enc, 4, graph::Precision::kF32);
  Rng rng(0xA77);
  for (std::int64_t n : {1, 3, 4}) {
    const Tensor x = Tensor::uniform(Shape{n, 3, kImg, kImg}, rng,
                                     -1.0f, 1.0f);
    const Tensor eager = enc.backbone->forward(x);
    const Tensor& got = fp.forward(x);
    bool same = got.shape() == eager.shape();
    for (std::int64_t i = 0; same && i < got.numel(); ++i)
      same = got.data()[i] == eager.data()[i];
    check(same, "compiled fp32 != eager (bitwise)");
  }

  auto q = compile_vit(enc, 4, graph::Precision::kInt8);
  const Tensor x = Tensor::uniform(Shape{4, 3, kImg, kImg}, rng, -1.0f, 1.0f);
  core::ThreadPool& pool = core::ThreadPool::instance();
  const std::size_t old_size = pool.size();
  pool.set_size(1);
  const Tensor serial = q.forward(x);  // copy: arena reused below
  pool.set_size(2);
  const Tensor& threaded = q.forward(x);
  pool.set_size(old_size);
  bool same = threaded.shape() == serial.shape();
  for (std::int64_t i = 0; same && i < serial.numel(); ++i)
    same = threaded.data()[i] == serial.data()[i];
  check(same, "int8 plan pool-size 1 != 2 (bitwise)");
  return g_failures == 0;
}

// ---- attn: attention-shaped GEMM throughput --------------------------------

struct AttnCase {
  std::string name;
  std::int64_t seq = 0, dh = 0;
  double gflops = 0.0;
};

std::vector<AttnCase> bench_attn(double target) {
  std::vector<AttnCase> cases;
  Rng rng(0x5C02E);
  struct Shape2 {
    std::int64_t seq, dh;
  };
  for (const auto& s : {Shape2{16, 32}, Shape2{64, 64}, Shape2{256, 64}}) {
    std::vector<float> q(static_cast<std::size_t>(s.seq * s.dh));
    std::vector<float> k(q.size());
    std::vector<float> a(static_cast<std::size_t>(s.seq * s.seq));
    std::vector<float> v(q.size()), o(q.size());
    for (auto& x : q) x = rng.uniform(-1.0f, 1.0f);
    for (auto& x : k) x = rng.uniform(-1.0f, 1.0f);
    for (auto& x : a) x = rng.uniform(0.0f, 1.0f);
    for (auto& x : v) x = rng.uniform(-1.0f, 1.0f);
    const double flops = 2.0 * static_cast<double>(s.seq) * s.seq * s.dh;

    const double ts = time_best(
        [&] {
          gemm::gemm(gemm::Trans::kNT, s.seq, s.seq, s.dh, q.data(), k.data(),
                     a.data(), false);
        },
        target);
    cases.push_back({"score_seq" + std::to_string(s.seq) + "_dh" +
                         std::to_string(s.dh),
                     s.seq, s.dh, flops / ts / 1e9});

    const double tv = time_best(
        [&] {
          gemm::gemm(gemm::Trans::kNN, s.seq, s.dh, s.seq, a.data(), v.data(),
                     o.data(), false);
        },
        target);
    cases.push_back({"value_seq" + std::to_string(s.seq) + "_dh" +
                         std::to_string(s.dh),
                     s.seq, s.dh, flops / tv / 1e9});
  }
  return cases;
}

// ---- forward: compiled vs eager --------------------------------------------

struct ForwardSection {
  std::int64_t batch = 8;
  double eager_ms = 0.0;
  double fp32_ms = 0.0;
  double int8_ms = 0.0;
};

ForwardSection bench_forward(models::Encoder& enc, double target) {
  ForwardSection fwd;
  auto fp = compile_vit(enc, fwd.batch, graph::Precision::kF32);
  auto q = compile_vit(enc, fwd.batch, graph::Precision::kInt8);
  Rng rng(0xF0E);
  const Tensor x = Tensor::uniform(Shape{fwd.batch, 3, kImg, kImg}, rng,
                                   -1.0f, 1.0f);
  fwd.eager_ms =
      1e3 * time_best([&] { enc.backbone->forward(x); }, target);
  fwd.fp32_ms = 1e3 * time_best([&] { fp.forward(x); }, target);
  fwd.int8_ms = 1e3 * time_best([&] { q.forward(x); }, target);
  return fwd;
}

// ---- ptq: CPT-V recall study -----------------------------------------------

struct PtqSection {
  std::int64_t base_rows = 0, num_queries = 0, dim = 0;
  quant::PtqResult result;
  bool deterministic = false;
  double naive_recall = 0.0;
  double cptv_recall = 0.0;
  // The deployment-recovery scenario: a plan with stale/miscalibrated
  // scales, fixed by re-applying the calibrated ScaleTable.
  double miscal_recall = 0.0;
  double reapplied_recall = 0.0;
  bool recovered = false;
};

/// Miscalibrate every int8 layer: one per-tensor scale (the absmax of its
/// per-channel min-max scales) inflated 4x — a stale scale table fit on a
/// different checkpoint / activation range, the classic silent deployment
/// failure. The inflated step size wastes ~2 bits of resolution.
void miscalibrate(graph::CompiledModel& qm) {
  for (std::size_t idx : qm.int8_nodes()) {
    const auto& s = qm.node_scales(idx);
    const float mx = 4.0f * *std::max_element(s.begin(), s.end());
    qm.requantize_node(idx, std::vector<float>(s.size(), mx));
  }
}

/// Chunked forward of [N, ...] through a compiled plan into one [N, D]
/// feature matrix.
Tensor embed_all(graph::CompiledModel& model, const Tensor& images) {
  const std::int64_t n = images.dim(0);
  const std::int64_t per = images.numel() / n;
  Tensor out;
  std::int64_t done = 0;
  while (done < n) {
    const std::int64_t take = std::min(model.max_batch(), n - done);
    Tensor chunk(Shape{take, images.dim(1), images.dim(2), images.dim(3)});
    std::memcpy(chunk.data(), images.data() + done * per,
                static_cast<std::size_t>(take * per) * sizeof(float));
    const Tensor& z = model.forward(chunk);
    if (done == 0) out = Tensor::zeros(Shape{n, z.dim(1)});
    std::memcpy(out.data() + done * z.dim(1), z.data(),
                static_cast<std::size_t>(take * z.dim(1)) * sizeof(float));
    done += take;
  }
  return out;
}

/// recall@k of a quantized embedding space against the fp32 cosine top-k
/// ground truth: both sides retrieve with their own embeddings; overlap of
/// the id sets is averaged over queries.
double recall_vs_fp32(
    const std::vector<std::vector<std::int64_t>>& gt_fp,
    const Tensor& base, const Tensor& queries) {
  const auto got = search::cosine_ground_truth(
      base.data(), base.dim(0), queries.data(), queries.dim(0), base.dim(1),
      kTopK);
  double hits = 0.0;
  for (std::size_t qi = 0; qi < gt_fp.size(); ++qi) {
    for (const std::int64_t id : got[qi])
      if (std::find(gt_fp[qi].begin(), gt_fp[qi].end(), id) !=
          gt_fp[qi].end())
        hits += 1.0;
  }
  return hits / (static_cast<double>(gt_fp.size()) * kTopK);
}

bool tables_equal(const quant::ScaleTable& a, const quant::ScaleTable& b) {
  if (a.labels != b.labels || a.scales.size() != b.scales.size())
    return false;
  for (std::size_t e = 0; e < a.scales.size(); ++e)
    if (a.scales[e] != b.scales[e]) return false;
  return true;
}

PtqSection bench_ptq(models::Encoder& enc, const core::DatasetBundle& bundle,
                     const quant::PtqConfig& config) {
  PtqSection ptq;
  const std::int64_t base_rows =
      std::min<std::int64_t>(256, bundle.ssl_train.size());
  const std::int64_t num_queries =
      std::min<std::int64_t>(64, bundle.test.size());
  ptq.base_rows = base_rows;
  ptq.num_queries = num_queries;

  std::vector<std::int64_t> idx(static_cast<std::size_t>(base_rows));
  for (std::int64_t i = 0; i < base_rows; ++i) idx[static_cast<std::size_t>(i)] = i;
  const Tensor base_imgs = data::gather_images(bundle.ssl_train, idx);
  idx.resize(static_cast<std::size_t>(num_queries));
  const Tensor query_imgs = data::gather_images(bundle.test, idx);

  // Calibration batch: bigger is strictly better for the InfoNCE objective
  // (more negatives -> the accept rule measures the geometry retrieval
  // actually uses; a small batch lets proposals overfit the few samples).
  const std::int64_t max_batch = std::min<std::int64_t>(256, base_rows);
  auto fp = compile_vit(enc, max_batch, graph::Precision::kF32);
  const Tensor base_fp = embed_all(fp, base_imgs);
  const Tensor query_fp = embed_all(fp, query_imgs);
  ptq.dim = base_fp.dim(1);
  const auto gt_fp = search::cosine_ground_truth(
      base_fp.data(), base_rows, query_fp.data(), num_queries, ptq.dim,
      kTopK);

  // Naive min-max scales: the plan exactly as compiled.
  auto naive = compile_vit(enc, max_batch, graph::Precision::kInt8);
  ptq.naive_recall = recall_vs_fp32(gt_fp, embed_all(naive, base_imgs),
                                    embed_all(naive, query_imgs));

  // CPT-V calibration on the first max_batch base images, fp32 embeddings
  // of the same rows as the contrastive reference.
  Tensor calib(Shape{max_batch, 3, kImg, kImg});
  std::memcpy(calib.data(), base_imgs.data(),
              static_cast<std::size_t>(calib.numel()) * sizeof(float));
  Tensor zfp(Shape{max_batch, ptq.dim});
  std::memcpy(zfp.data(), base_fp.data(),
              static_cast<std::size_t>(zfp.numel()) * sizeof(float));

  auto cal = compile_vit(enc, max_batch, graph::Precision::kInt8);
  ptq.result = quant::calibrate(cal, calib, zfp, config);
  const Tensor cal_base = embed_all(cal, base_imgs);
  const Tensor cal_query = embed_all(cal, query_imgs);
  ptq.cptv_recall = recall_vs_fp32(gt_fp, cal_base, cal_query);

  // The deployment-recovery scenario: a serving plan with stale per-tensor
  // scales (the classic silent failure — a table fit on a different
  // checkpoint). The fix the ScaleTable machinery exists for: re-apply the
  // calibrated table by label, which must land the plan bitwise on the
  // calibrated operating point.
  auto pt = compile_vit(enc, max_batch, graph::Precision::kInt8);
  miscalibrate(pt);
  ptq.miscal_recall = recall_vs_fp32(gt_fp, embed_all(pt, base_imgs),
                                     embed_all(pt, query_imgs));
  quant::apply(pt, ptq.result.table);
  const Tensor re_base = embed_all(pt, base_imgs);
  const Tensor re_query = embed_all(pt, query_imgs);
  ptq.reapplied_recall = recall_vs_fp32(gt_fp, re_base, re_query);
  const auto bitwise = [](const Tensor& a, const Tensor& b) {
    return a.shape() == b.shape() &&
           std::equal(a.data(), a.data() + a.numel(), b.data());
  };
  ptq.recovered = bitwise(re_base, cal_base) && bitwise(re_query, cal_query);
  check(ptq.recovered,
        "re-applied scale table does not reproduce the calibrated plan");

  // Determinism: a second fresh-plan calibration must emit the identical
  // table byte for byte.
  auto cal2 = compile_vit(enc, max_batch, graph::Precision::kInt8);
  const auto again = quant::calibrate(cal2, calib, zfp, config);
  ptq.deterministic = tables_equal(ptq.result.table, again.table);
  check(ptq.deterministic, "CPT-V tables differ across calibrations");
  return ptq;
}

// ---- report ----------------------------------------------------------------

void write_json(const std::string& path, const std::vector<AttnCase>& attn,
                const ForwardSection& fwd, const PtqSection& ptq,
                const quant::PtqConfig& config) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    ++g_failures;
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"vit\",\n");
  std::fprintf(f,
               "  \"regenerate\": \"build/bench/vit "
               "--json=BENCH_vit.json\",\n");
  std::fprintf(f, "  \"hardware\": {\"cores\": %u, \"cq_threads\": %llu},\n",
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(core::configured_threads()));
  std::fprintf(f, "  \"bitwise_equivalent\": %s,\n",
               g_failures == 0 ? "true" : "false");

  std::fprintf(f, "  \"attn_gemm\": {\"cases\": [\n");
  for (std::size_t i = 0; i < attn.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seq\": %lld, \"d_head\": %lld, "
                 "\"attn_gflops\": %.2f}%s\n",
                 attn[i].name.c_str(), static_cast<long long>(attn[i].seq),
                 static_cast<long long>(attn[i].dh), attn[i].gflops,
                 i + 1 < attn.size() ? "," : "");
  }
  std::fprintf(f, "  ]},\n");

  std::fprintf(f,
               "  \"forward\": {\"batch\": %lld, \"eager_ms\": %.4f, "
               "\"compiled_fp32_ms\": %.4f, \"compiled_int8_ms\": %.4f, "
               "\"speedup\": %.2f, \"int8_vs_fp32\": %.2f},\n",
               static_cast<long long>(fwd.batch), fwd.eager_ms, fwd.fp32_ms,
               fwd.int8_ms, fwd.eager_ms / fwd.fp32_ms,
               fwd.fp32_ms / fwd.int8_ms);

  std::fprintf(f,
               "  \"ptq\": {\"base_rows\": %lld, \"num_queries\": %lld, "
               "\"dim\": %lld, \"k\": %lld,\n",
               static_cast<long long>(ptq.base_rows),
               static_cast<long long>(ptq.num_queries),
               static_cast<long long>(ptq.dim),
               static_cast<long long>(kTopK));
  std::fprintf(f,
               "    \"calibration\": {\"rounds\": %d, \"candidates\": %d, "
               "\"spread\": %.2f, \"tau\": %.2f, \"proposed\": %d, "
               "\"accepted\": %d, \"initial_loss\": %.6f, \"final_loss\": "
               "%.6f, \"deterministic\": %s},\n",
               config.rounds, config.candidates,
               static_cast<double>(config.spread),
               static_cast<double>(config.tau), ptq.result.proposed,
               ptq.result.accepted,
               static_cast<double>(ptq.result.initial_loss),
               static_cast<double>(ptq.result.final_loss),
               ptq.deterministic ? "true" : "false");
  std::fprintf(f,
               "    \"naive_int8\": {\"recall_at_10\": %.4f},\n"
               "    \"cptv_int8\": {\"recall_at_10\": %.4f},\n"
               "    \"cptv_minus_naive\": %.4f,\n",
               ptq.naive_recall, ptq.cptv_recall,
               ptq.cptv_recall - ptq.naive_recall);
  std::fprintf(f,
               "    \"recovery\": {\"miscalibrated\": {\"recall_at_10\": "
               "%.4f},\n"
               "      \"table_reapplied\": {\"recall_at_10\": %.4f},\n"
               "      \"recovered\": %s}},\n",
               ptq.miscal_recall, ptq.reapplied_recall,
               ptq.recovered ? "true" : "false");

  // The acceptance contract (ROADMAP.md / ISSUE 10): CPT-V int8 retrieval
  // within 2% of the fp32 ground truth at k=10, tables deterministic, the
  // table re-apply recovery bitwise, and every bitwise gate green.
  const bool met = ptq.cptv_recall >= 0.98 && ptq.recovered &&
                   ptq.deterministic && g_failures == 0;
  std::fprintf(f,
               "  \"headline\": {\"recall_at_10\": %.4f, "
               "\"compile_speedup\": %.2f, \"target_met\": %s}\n",
               ptq.cptv_recall, fwd.eager_ms / fwd.fp32_ms,
               met ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (target_met=%s)\n", path.c_str(),
              met ? "true" : "false");
  if (!met) {
    std::fprintf(stderr,
                 "headline target missed: cptv recall@10 %.4f (need >=0.98) "
                 "deterministic=%d\n",
                 ptq.cptv_recall, ptq.deterministic ? 1 : 0);
    ++g_failures;
  }
}

int smoke() {
  auto enc = fresh_vit(42);
  if (!equivalence_gate(enc)) return 1;
  // Tiny calibration determinism check on the random-init encoder.
  Rng rng(0x51);
  const Tensor calib = Tensor::uniform(Shape{4, 3, kImg, kImg}, rng,
                                       -1.0f, 1.0f);
  const Tensor zfp = enc.backbone->forward(calib);
  quant::PtqConfig cfg;
  cfg.rounds = 1;
  cfg.candidates = 2;
  auto q1 = compile_vit(enc, 4, graph::Precision::kInt8);
  auto q2 = compile_vit(enc, 4, graph::Precision::kInt8);
  const auto r1 = quant::calibrate(q1, calib, zfp, cfg);
  const auto r2 = quant::calibrate(q2, calib, zfp, cfg);
  check(tables_equal(r1.table, r2.table), "smoke: tables not deterministic");
  check(r1.final_loss <= r1.initial_loss, "smoke: loss increased");
  if (g_failures != 0) return 1;
  std::printf("VIT_SMOKE_OK\n");
  return 0;
}

int run(const std::string& json_path) {
  // The CQ-pretrained encoder (cached across bench binaries): the PTQ story
  // is about preserving a *trained* embedding geometry.
  const auto bundle = core::make_bundle("synth-cifar");
  core::PretrainConfig pcfg;
  pcfg.variant = core::CqVariant::kCqA;
  pcfg.precisions = quant::PrecisionSet::range(6, 16);
  pcfg.epochs = core::env_int("CQ_EPOCHS", 6);
  pcfg.batch_size = 16;
  pcfg.lr = 0.05f;
  pcfg.warmup_epochs = 0;
  pcfg.proj_hidden = 32;
  pcfg.proj_dim = 16;
  pcfg.seed = 7;
  core::PretrainStats stats;
  auto enc = bench::pretrained_encoder("vit", bundle, pcfg, "simclr",
                                       &stats);
  check(!stats.diverged, "vit pretraining diverged");
  enc.policy->set_full_precision();
  enc.backbone->set_mode(nn::Mode::kEval);

  if (!equivalence_gate(enc)) return 1;

  const auto attn = bench_attn(0.1);
  const auto fwd = bench_forward(enc, 0.1);
  const quant::PtqConfig config;  // the library defaults are the contract
  const auto ptq = bench_ptq(enc, bundle, config);

  std::printf("attn GEMM:\n");
  for (const auto& c : attn)
    std::printf("  %-18s %8.2f GFLOP/s\n", c.name.c_str(), c.gflops);
  std::printf(
      "forward batch %lld: eager %.3f ms, compiled fp32 %.3f ms (%.2fx), "
      "int8 %.3f ms\n",
      static_cast<long long>(fwd.batch), fwd.eager_ms, fwd.fp32_ms,
      fwd.eager_ms / fwd.fp32_ms, fwd.int8_ms);
  std::printf(
      "ptq: fp32 gt, naive int8 recall@10 %.4f, cptv int8 recall@10 %.4f "
      "(loss %.4f -> %.4f, %d/%d accepted)\n",
      ptq.naive_recall, ptq.cptv_recall, ptq.result.initial_loss,
      ptq.result.final_loss, ptq.result.accepted, ptq.result.proposed);
  std::printf(
      "     miscalibrated recall@10 %.4f -> table reapplied %.4f "
      "(recovered=%s)\n",
      ptq.miscal_recall, ptq.reapplied_recall,
      ptq.recovered ? "true" : "false");
  if (!json_path.empty()) write_json(json_path, attn, fwd, ptq, config);
  if (g_failures) {
    std::fprintf(stderr, "%d check(s) FAILED\n", g_failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json;
  bool smoke_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke_only = true;
    } else {
      std::fprintf(stderr, "usage: vit [--json=PATH] [--smoke]\n");
      return 2;
    }
  }
  return smoke_only ? smoke() : run(json);
}
