// Ablation bench for the quantizer design choices DESIGN.md calls out
// (beyond the paper's own Table 8 precision-set ablation):
//   * rounding mode in Eq. 10 — paper prints floor, standard quantizers
//     round to nearest;
//   * dynamic range: min/max vs percentile clipping;
//   * (q1, q2) sampling: distinct vs with-replacement.
// Each row pretrains CQ-C on the CIFAR stand-in with one knob flipped and
// reports linear-eval accuracy.
#include "bench_common.hpp"
#include "core/simclr.hpp"

using namespace cq;

namespace {

struct Knob {
  const char* name;
  quant::RoundingMode rounding;
  quant::RangeMode range;
  bool distinct_pair;
};

}  // namespace

int main() {
  bench::print_preamble(
      "Ablation — quantizer design choices",
      "CQ-C (6-16) on the CIFAR stand-in with one quantizer knob flipped "
      "per row; linear-eval accuracy. (Not a paper table; DESIGN.md Sec. 5.)");

  const auto bundle = core::make_bundle("synth-cifar");
  const Knob knobs[] = {
      {"baseline (nearest, minmax, distinct q1!=q2)",
       quant::RoundingMode::kNearest, quant::RangeMode::kMinMax, true},
      {"floor rounding (paper Eq. 10 as printed)",
       quant::RoundingMode::kFloor, quant::RangeMode::kMinMax, true},
      {"percentile-clipped range (p=0.999)",
       quant::RoundingMode::kNearest, quant::RangeMode::kPercentile, true},
      {"q1, q2 sampled with replacement",
       quant::RoundingMode::kNearest, quant::RangeMode::kMinMax, false},
  };

  TableWriter table({"Quantizer knob", "Linear eval", "final SSL loss"});
  for (const auto& knob : knobs) {
    quant::QuantizerConfig qcfg;
    qcfg.rounding = knob.rounding;
    qcfg.range = knob.range;

    Rng rng(42);
    auto encoder = models::make_encoder("resnet18", rng, qcfg);
    auto cfg = bench::standard_pretrain(bundle.name, core::CqVariant::kCqC,
                                        quant::PrecisionSet::range(6, 16));
    cfg.distinct_pair = knob.distinct_pair;
    // No cache: the quantizer config is part of the encoder, not the key.
    core::SimClrCqTrainer trainer(encoder, cfg);
    const auto stats = trainer.train(bundle.ssl_train);
    const float acc = eval::linear_eval(encoder, bundle.labeled, bundle.test,
                                        bench::linear_config())
                          .test_accuracy;
    table.add_row({knob.name, bench::cell(acc),
                   TableWriter::num(stats.final_loss, 3)});
  }
  table.print();
  return 0;
}
