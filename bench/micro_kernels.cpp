// Microbenchmarks (google-benchmark) for the kernels the CQ pipelines lean
// on: the Eq. 10 quantizer, GEMM, convolution forward/backward, NT-Xent, and
// the augmentation pipeline. Also serves as the ablation bench for the
// quantizer's rounding / range-mode design choices (DESIGN.md Sec. 5).
//
// Two extra modes bypass the google-benchmark runner:
//   --gemm_json=PATH  time blocked vs reference GEMM per shape class and
//                     write the GFLOP/s report to PATH (BENCH_gemm.json in
//                     the repo root is generated this way; see DESIGN.md).
//   --gemm_smoke      tiny-size run of the same harness incl. equivalence
//                     checks; wired up as the `bench_smoke` ctest (label
//                     `bench`) so CI catches bench bitrot cheaply.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/losses.hpp"
#include "data/augment.hpp"
#include "data/synth.hpp"
#include "nn/conv2d.hpp"
#include "quant/quantizer.hpp"
#include "tensor/gemm.hpp"
#include "util/timer.hpp"

namespace {

using namespace cq;

void BM_QuantizeMinMaxNearest(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{state.range(0)}, rng);
  quant::LinearQuantizer q;
  for (auto _ : state)
    benchmark::DoNotOptimize(q.quantize(a, static_cast<int>(state.range(1))));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeMinMaxNearest)
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Args({65536, 4})
    ->Args({65536, 8});

void BM_QuantizeFloorVsNearest(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::randn(Shape{65536}, rng);
  quant::QuantizerConfig cfg;
  cfg.rounding = state.range(0) == 0 ? quant::RoundingMode::kNearest
                                     : quant::RoundingMode::kFloor;
  quant::LinearQuantizer q(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(q.quantize(a, 8));
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_QuantizeFloorVsNearest)->Arg(0)->Arg(1);

void BM_QuantizePercentileRange(benchmark::State& state) {
  Rng rng(3);
  Tensor a = Tensor::randn(Shape{65536}, rng);
  quant::QuantizerConfig cfg;
  cfg.range = quant::RangeMode::kPercentile;
  quant::LinearQuantizer q(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(q.quantize(a, 8));
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_QuantizePercentileRange);

// ---- GEMM: blocked kernels vs the naive reference --------------------------
//
// Shape classes mirror the library's real GEMM call sites:
//   conv     NN  [cout, krows] x [krows, oh*ow]   (im2col forward)
//   head     NT  [batch, in] x [out, in]^T        (Linear forward)
//   backward TN  [batch, out]^T x [batch, in]     (Linear dW)

struct GemmShape {
  const char* cls;
  gemm::Trans trans;
  std::int64_t m, n, k;
};

const char* trans_name(gemm::Trans t) {
  switch (t) {
    case gemm::Trans::kNN: return "NN";
    case gemm::Trans::kTN: return "TN";
    case gemm::Trans::kNT: return "NT";
  }
  return "?";
}

std::pair<std::int64_t, std::int64_t> gemm_operand_sizes(const GemmShape& s) {
  switch (s.trans) {
    case gemm::Trans::kNN: return {s.m * s.k, s.k * s.n};
    case gemm::Trans::kTN: return {s.k * s.m, s.k * s.n};
    case gemm::Trans::kNT: return {s.m * s.k, s.n * s.k};
  }
  return {0, 0};
}

using GemmFn = void (*)(gemm::Trans, std::int64_t, std::int64_t, std::int64_t,
                        const float*, const float*, float*, bool);

/// Time `fn` on shape `s`, returning GFLOP/s (best of three measured runs,
/// each calibrated to ~0.1s so tiny shapes aren't all timer noise).
double gemm_gflops(GemmFn fn, const GemmShape& s, const Tensor& a,
                   const Tensor& b, Tensor& c, int min_reps) {
  const double flops = 2.0 * double(s.m) * double(s.n) * double(s.k);
  fn(s.trans, s.m, s.n, s.k, a.data(), b.data(), c.data(), false);  // warm
  Timer cal;
  fn(s.trans, s.m, s.n, s.k, a.data(), b.data(), c.data(), false);
  const double once = std::max(cal.seconds(), 1e-7);
  const int reps = std::max<int>(min_reps, static_cast<int>(0.1 / once));
  double best = 0.0;
  for (int run = 0; run < 3; ++run) {
    Timer t;
    for (int r = 0; r < reps; ++r)
      fn(s.trans, s.m, s.n, s.k, a.data(), b.data(), c.data(), false);
    best = std::max(best, flops * reps / t.seconds());
  }
  return best / 1e9;
}

/// Run the blocked-vs-reference sweep; write JSON to `path` when non-empty.
/// Returns 0 on success, 1 if any blocked result drifts from the reference
/// (so the bench doubles as an equivalence check in CI smoke runs).
int run_gemm_report(const std::string& path, bool smoke) {
  const std::vector<GemmShape> shapes =
      smoke ? std::vector<GemmShape>{{"conv", gemm::Trans::kNN, 9, 33, 17},
                                     {"head", gemm::Trans::kNT, 5, 9, 13},
                                     {"backward", gemm::Trans::kTN, 9, 13, 5}}
            : std::vector<GemmShape>{
                  // conv-shaped: resnet stage at 32x32 and the repo's
                  // width-8 tiny stage at 16x16
                  {"conv", gemm::Trans::kNN, 64, 1024, 576},
                  {"conv", gemm::Trans::kNN, 16, 256, 72},
                  // head-shaped: projection/prediction MLPs
                  {"head", gemm::Trans::kNT, 128, 128, 512},
                  {"head", gemm::Trans::kNT, 64, 16, 32},
                  // backward-shaped: weight gradients
                  {"backward", gemm::Trans::kTN, 512, 128, 128},
                  {"backward", gemm::Trans::kTN, 576, 1024, 64},
              };
  int rc = 0;
  std::string body;
  char line[512];
  Rng rng(0xBE7C);
  for (std::size_t idx = 0; idx < shapes.size(); ++idx) {
    const GemmShape& s = shapes[idx];
    const auto [asize, bsize] = gemm_operand_sizes(s);
    Tensor a = Tensor::randn(Shape{asize}, rng);
    Tensor b = Tensor::randn(Shape{bsize}, rng);
    Tensor c(Shape{s.m * s.n}), c_ref(Shape{s.m * s.n});
    // Equivalence first: a bench comparing two kernels that disagree would
    // be reporting nonsense.
    gemm::gemm(s.trans, s.m, s.n, s.k, a.data(), b.data(), c.data(), false);
    gemm::reference::gemm(s.trans, s.m, s.n, s.k, a.data(), b.data(),
                          c_ref.data(), false);
    double max_err = 0.0;
    for (std::int64_t i = 0; i < s.m * s.n; ++i)
      max_err = std::max(max_err, std::abs(double(c[i]) - c_ref[i]) /
                                      (1.0 + std::abs(double(c_ref[i]))));
    if (max_err > 1e-4) {
      std::fprintf(stderr, "FAIL %s %s: blocked vs reference err %.3g\n",
                   s.cls, trans_name(s.trans), max_err);
      rc = 1;
    }
    const int min_reps = smoke ? 1 : 5;
    const double ref = gemm_gflops(gemm::reference::gemm, s, a, b, c_ref,
                                   min_reps);
    const double blk = gemm_gflops(gemm::gemm, s, a, b, c, min_reps);
    std::snprintf(line, sizeof(line),
                  "    {\"class\": \"%s\", \"trans\": \"%s\", \"m\": %lld, "
                  "\"n\": %lld, \"k\": %lld, \"reference_gflops\": %.3f, "
                  "\"blocked_gflops\": %.3f, \"speedup\": %.2f, "
                  "\"max_rel_err\": %.3g}%s\n",
                  s.cls, trans_name(s.trans), static_cast<long long>(s.m),
                  static_cast<long long>(s.n), static_cast<long long>(s.k),
                  ref, blk, blk / ref, max_err,
                  idx + 1 < shapes.size() ? "," : "");
    body += line;
    std::fprintf(stderr, "%-8s %s  m=%-4lld n=%-4lld k=%-4lld  ref %7.3f  "
                 "blocked %7.3f GFLOP/s  (%.2fx)\n",
                 s.cls, trans_name(s.trans), static_cast<long long>(s.m),
                 static_cast<long long>(s.n), static_cast<long long>(s.k),
                 ref, blk, blk / ref);
  }
  std::string json;
  json += "{\n";
  json += "  \"bench\": \"gemm_micro\",\n";
  json += "  \"unit\": \"gflops\",\n";
  json += "  \"regenerate\": \"build/bench/micro_kernels "
          "--gemm_json=BENCH_gemm.json\",\n";
  std::snprintf(line, sizeof(line),
                "  \"tile\": {\"mr\": %lld, \"nr\": %lld, \"mc\": %lld, "
                "\"kc\": %lld, \"nc\": %lld},\n",
                static_cast<long long>(gemm::kMR),
                static_cast<long long>(gemm::kNR),
                static_cast<long long>(gemm::kMC),
                static_cast<long long>(gemm::kKC),
                static_cast<long long>(gemm::kNC));
  json += line;
  json += "  \"cases\": [\n" + body + "  ]\n}\n";
  if (!path.empty()) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    out << json;
  }
  return rc;
}

void BM_GemmConvShaped(benchmark::State& state) {
  Rng rng(40);
  const std::int64_t m = 64, n = 1024, k = 576;
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  const bool blocked = state.range(0) != 0;
  for (auto _ : state) {
    if (blocked)
      gemm::gemm(gemm::Trans::kNN, m, n, k, a.data(), b.data(), c.data());
    else
      gemm::reference::gemm(gemm::Trans::kNN, m, n, k, a.data(), b.data(),
                            c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);  // flops
}
BENCHMARK(BM_GemmConvShaped)->Arg(0)->Arg(1);

void BM_GemmHeadShaped(benchmark::State& state) {
  Rng rng(41);
  const std::int64_t m = 128, n = 128, k = 512;
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{n, k}, rng);
  Tensor c(Shape{m, n});
  for (auto _ : state) {
    gemm::gemm(gemm::Trans::kNT, m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_GemmHeadShaped);

void BM_GemmBackwardShaped(benchmark::State& state) {
  Rng rng(42);
  const std::int64_t m = 512, n = 128, k = 128;
  Tensor a = Tensor::randn(Shape{k, m}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c(Shape{m, n});
  for (auto _ : state) {
    gemm::gemm(gemm::Trans::kTN, m, n, k, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_GemmBackwardShaped);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(4);
  nn::Conv2d conv({.in_channels = 8, .out_channels = 16, .kernel = 3,
                   .stride = 1, .pad = 1},
                  rng);
  conv.set_mode(nn::Mode::kEval);
  Tensor x = Tensor::randn(Shape{state.range(0), 8, 16, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(8)->Arg(32);

void BM_Conv2dTrainStep(benchmark::State& state) {
  Rng rng(5);
  nn::Conv2d conv({.in_channels = 8, .out_channels = 16, .kernel = 3,
                   .stride = 1, .pad = 1},
                  rng);
  Tensor x = Tensor::randn(Shape{8, 8, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(conv.backward(Tensor::ones(y.shape())));
    conv.zero_grad();
  }
}
BENCHMARK(BM_Conv2dTrainStep);

void BM_DepthwiseConvForward(benchmark::State& state) {
  Rng rng(6);
  nn::Conv2d conv({.in_channels = 16, .out_channels = 16, .kernel = 3,
                   .stride = 1, .pad = 1, .groups = 16},
                  rng);
  conv.set_mode(nn::Mode::kEval);
  Tensor x = Tensor::randn(Shape{8, 16, 16, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
}
BENCHMARK(BM_DepthwiseConvForward);

void BM_NtXent(benchmark::State& state) {
  Rng rng(7);
  Tensor za = Tensor::randn(Shape{state.range(0), 16}, rng);
  Tensor zb = Tensor::randn(Shape{state.range(0), 16}, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::nt_xent(za, zb, 0.5f));
}
BENCHMARK(BM_NtXent)->Arg(16)->Arg(32)->Arg(64);

void BM_AugmentPipeline(benchmark::State& state) {
  Rng rng(8);
  auto cfg = data::synth_cifar_config();
  const auto ds = data::make_synth_dataset(cfg, 8, rng);
  data::AugmentPipeline aug;
  for (auto _ : state)
    benchmark::DoNotOptimize(aug(ds.images[0], rng));
}
BENCHMARK(BM_AugmentPipeline);

void BM_SynthRender(benchmark::State& state) {
  Rng rng(9);
  const auto cls = data::make_class_def(3, 8, 1);
  for (auto _ : state) {
    const auto inst = data::sample_instance(rng, 0.5f);
    benchmark::DoNotOptimize(data::render_instance(cls, inst, 16, 16, rng));
  }
}
BENCHMARK(BM_SynthRender);

}  // namespace

int main(int argc, char** argv) {
  // Pre-parse the GEMM report flags (combinable in any order) before
  // handing the rest to google-benchmark.
  std::string gemm_json;
  bool gemm_report = false, gemm_smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--gemm_json=", 0) == 0) {
      gemm_json = arg.substr(12);
      gemm_report = true;
    } else if (arg == "--gemm_smoke") {
      gemm_smoke = gemm_report = true;
    }
  }
  if (gemm_report) return run_gemm_report(gemm_json, gemm_smoke);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
