// Microbenchmarks (google-benchmark) for the kernels the CQ pipelines lean
// on: the Eq. 10 quantizer, convolution forward/backward, NT-Xent, and the
// augmentation pipeline. Also serves as the ablation bench for the
// quantizer's rounding / range-mode design choices (DESIGN.md Sec. 5).
#include <benchmark/benchmark.h>

#include "core/losses.hpp"
#include "data/augment.hpp"
#include "data/synth.hpp"
#include "nn/conv2d.hpp"
#include "quant/quantizer.hpp"

namespace {

using namespace cq;

void BM_QuantizeMinMaxNearest(benchmark::State& state) {
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{state.range(0)}, rng);
  quant::LinearQuantizer q;
  for (auto _ : state)
    benchmark::DoNotOptimize(q.quantize(a, static_cast<int>(state.range(1))));
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeMinMaxNearest)
    ->Args({4096, 4})
    ->Args({4096, 8})
    ->Args({65536, 4})
    ->Args({65536, 8});

void BM_QuantizeFloorVsNearest(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::randn(Shape{65536}, rng);
  quant::QuantizerConfig cfg;
  cfg.rounding = state.range(0) == 0 ? quant::RoundingMode::kNearest
                                     : quant::RoundingMode::kFloor;
  quant::LinearQuantizer q(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(q.quantize(a, 8));
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_QuantizeFloorVsNearest)->Arg(0)->Arg(1);

void BM_QuantizePercentileRange(benchmark::State& state) {
  Rng rng(3);
  Tensor a = Tensor::randn(Shape{65536}, rng);
  quant::QuantizerConfig cfg;
  cfg.range = quant::RangeMode::kPercentile;
  quant::LinearQuantizer q(cfg);
  for (auto _ : state) benchmark::DoNotOptimize(q.quantize(a, 8));
  state.SetItemsProcessed(state.iterations() * 65536);
}
BENCHMARK(BM_QuantizePercentileRange);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(4);
  nn::Conv2d conv({.in_channels = 8, .out_channels = 16, .kernel = 3,
                   .stride = 1, .pad = 1},
                  rng);
  conv.set_mode(nn::Mode::kEval);
  Tensor x = Tensor::randn(Shape{state.range(0), 8, 16, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(8)->Arg(32);

void BM_Conv2dTrainStep(benchmark::State& state) {
  Rng rng(5);
  nn::Conv2d conv({.in_channels = 8, .out_channels = 16, .kernel = 3,
                   .stride = 1, .pad = 1},
                  rng);
  Tensor x = Tensor::randn(Shape{8, 8, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x);
    benchmark::DoNotOptimize(conv.backward(Tensor::ones(y.shape())));
    conv.zero_grad();
  }
}
BENCHMARK(BM_Conv2dTrainStep);

void BM_DepthwiseConvForward(benchmark::State& state) {
  Rng rng(6);
  nn::Conv2d conv({.in_channels = 16, .out_channels = 16, .kernel = 3,
                   .stride = 1, .pad = 1, .groups = 16},
                  rng);
  conv.set_mode(nn::Mode::kEval);
  Tensor x = Tensor::randn(Shape{8, 16, 16, 16}, rng);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x));
}
BENCHMARK(BM_DepthwiseConvForward);

void BM_NtXent(benchmark::State& state) {
  Rng rng(7);
  Tensor za = Tensor::randn(Shape{state.range(0), 16}, rng);
  Tensor zb = Tensor::randn(Shape{state.range(0), 16}, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::nt_xent(za, zb, 0.5f));
}
BENCHMARK(BM_NtXent)->Arg(16)->Arg(32)->Arg(64);

void BM_AugmentPipeline(benchmark::State& state) {
  Rng rng(8);
  auto cfg = data::synth_cifar_config();
  const auto ds = data::make_synth_dataset(cfg, 8, rng);
  data::AugmentPipeline aug;
  for (auto _ : state)
    benchmark::DoNotOptimize(aug(ds.images[0], rng));
}
BENCHMARK(BM_AugmentPipeline);

void BM_SynthRender(benchmark::State& state) {
  Rng rng(9);
  const auto cls = data::make_class_def(3, 8, 1);
  for (auto _ : state) {
    const auto inst = data::sample_instance(rng, 0.5f);
    benchmark::DoNotOptimize(data::render_instance(cls, inst, 16, 16, rng));
  }
}
BENCHMARK(BM_SynthRender);

}  // namespace

BENCHMARK_MAIN();
