// Binary-embedding search bench (DESIGN.md §15): regenerates the repo-root
// BENCH_search.json. Four sections:
//
//   scan     raw kernel throughput past LLC: Hamming scan over packed 1-bit
//            and 2-bit codes vs kernels::dot_scan fp32 cosine brute force,
//            same 400k x 64 corpus. The memory-bound regime is the honest
//            one for retrieval — a resident fp32 matrix at this size streams
//            from DRAM while the 1-bit codes fit in cache.
//
//   query    end-to-end Index::query (scan + bounded heap + exact-cosine
//            rerank of the overfetched pool) vs an fp32 brute-force query
//            (dot_scan + top-k heap) on the same corpus, per-query qps. The
//            1-bit rerank speedup here is the headline: it keeps the
//            ground-truth-equal operating point (recall section) AND the
//            >=8x contract from ROADMAP.md.
//
//   recall   recall@10-vs-bits on real encoders: CQ-pretrained vs plain
//            SimCLR (cached standard_pretrain recipes), features from
//            eval::extract_features, all four code variants through
//            search::recall_vs_bits_features.
//
//   service  closed-loop search::Service load (encode -> binarize -> scan)
//            with concurrent clients: sustained qps + e2e p50/p99.
//
// Protocol: bitwise equivalence gates run before any timing — backend vs
// scalar kernels on the scan path, and pool-size 1 vs 2 parity for the
// threaded query path (the determinism contract). A mismatch fails the
// bench; "bitwise_equivalent" is a gated baseline metric.
//
// Flags: --json=PATH writes the report; --smoke runs the gates + a tiny
// service burst only (the `search_smoke` ctest, label `bench`).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/threadpool.hpp"
#include "search/recall.hpp"
#include "search/service.hpp"
#include "tensor/kernels/hamming.hpp"
#include "tensor/kernels/kernels.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace cq;

int g_failures = 0;

void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL %s\n", what);
    ++g_failures;
  }
}

/// Best-of-3 seconds per call, calibrated to ~`target` seconds per run.
template <class F>
double time_best(F&& fn, double target) {
  fn();  // warm
  Timer cal;
  fn();
  const double once = std::max(cal.seconds(), 1e-7);
  const int reps = std::max<int>(1, static_cast<int>(target / once));
  double best = 1e300;
  for (int run = 0; run < 3; ++run) {
    Timer t;
    for (int r = 0; r < reps; ++r) fn();
    best = std::min(best, t.seconds() / reps);
  }
  return best;
}

// The operating point shared by the query and recall sections: the speedup
// is only meaningful "at equal recall", so both measure k=10 with the same
// overfetch+rerank setting.
constexpr std::int64_t kTopK = 10;
constexpr std::int64_t kOverfetch = 8;

// ---- equivalence gates -----------------------------------------------------

/// Backend-vs-scalar bitwise parity on the scan kernels (odd shapes included)
/// plus pool-size 1 vs 2 parity of a full Index::query. Runs before any
/// timing; returns false (and records a failure) on the first mismatch.
bool equivalence_gate() {
  Rng rng(0xB17);
  const std::int64_t dim = 64, rows = 3 * search::Index::kScanBlock + 517;
  std::vector<float> base(static_cast<std::size_t>(rows * dim));
  for (auto& v : base) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> thr(static_cast<std::size_t>(dim), 0.0f);

  // binarize + hamming_scan backend vs scalar, including an odd tail width.
  for (std::int64_t cols : {dim, std::int64_t{37}}) {
    const std::int64_t words = (cols + 63) / 64;
    std::vector<std::uint64_t> a(static_cast<std::size_t>(rows * words));
    std::vector<std::uint64_t> b(a.size());
    kernels::binarize_1bit(base.data(), rows, cols, thr.data(), words,
                           a.data());
    kernels::scalar::binarize_1bit(base.data(), rows, cols, thr.data(), words,
                                   b.data());
    check(a == b, "binarize_1bit backend != portable (bitwise)");
    std::vector<std::uint32_t> da(static_cast<std::size_t>(rows)), db(da);
    kernels::hamming_scan(a.data(), a.data(), rows, words, da.data());
    kernels::scalar::hamming_scan(a.data(), a.data(), rows, words, db.data());
    check(da == db, "hamming_scan backend != portable (bitwise)");
  }

  // Threaded query determinism: identical results at pool sizes 1 and 2.
  search::IndexConfig icfg;
  icfg.dim = dim;
  icfg.layout = search::CodeLayout::k1Bit;
  icfg.store_embeddings = true;
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r)
    ids[r] = static_cast<std::uint64_t>(r);
  search::Index index(
      icfg, search::Binarizer::fit(base.data(), rows, dim,
                                   search::CodeLayout::k1Bit));
  index.add(base.data(), ids.data(), rows);
  search::QueryOptions opts;
  opts.k = kTopK;
  opts.overfetch = kOverfetch;
  opts.rerank = true;
  search::QueryScratch scratch;
  index.prepare(opts, scratch);
  std::vector<search::Result> r1(static_cast<std::size_t>(kTopK)), r2(r1);
  auto& pool = core::ThreadPool::instance();
  const std::size_t original = pool.size();
  pool.set_size(1);
  const std::int64_t n1 = index.query(base.data(), opts, scratch, r1.data());
  pool.set_size(2);
  const std::int64_t n2 = index.query(base.data(), opts, scratch, r2.data());
  pool.set_size(original);
  bool same = n1 == n2;
  for (std::int64_t i = 0; same && i < n1; ++i)
    same = r1[i].id == r2[i].id && r1[i].dist == r2[i].dist &&
           std::memcmp(&r1[i].score, &r2[i].score, sizeof(float)) == 0;
  check(same, "Index::query differs across pool sizes (determinism)");
  return g_failures == 0;
}

// ---- scan: raw kernel throughput past LLC ----------------------------------

struct ScanCase {
  std::string name;
  std::int64_t words_per_row = 0;
  double bytes_per_row = 0.0;
  double seconds = 0.0;  // per full scan
};

struct ScanSection {
  std::int64_t rows = 0, dim = 0;
  double fp32_seconds = 0.0;
  std::vector<ScanCase> cases;
};

ScanSection bench_scan(const std::vector<float>& base, std::int64_t rows,
                       std::int64_t dim, double target) {
  ScanSection s;
  s.rows = rows;
  s.dim = dim;

  std::vector<float> scores(static_cast<std::size_t>(rows));
  s.fp32_seconds = time_best(
      [&] {
        kernels::dot_scan(base.data(), base.data(), rows, dim, scores.data());
        escape(scores.data());
      },
      target);

  std::vector<std::uint32_t> dist(static_cast<std::size_t>(rows));
  for (const auto layout :
       {search::CodeLayout::k1Bit, search::CodeLayout::k2Bit}) {
    const auto bin = search::Binarizer::fit(base.data(), rows, dim, layout);
    const std::int64_t words = bin.words_per_row();
    std::vector<std::uint64_t> codes(static_cast<std::size_t>(rows * words));
    bin.encode(base.data(), rows, codes.data());
    ScanCase c;
    c.name = layout == search::CodeLayout::k1Bit ? "hamming_1bit"
                                                 : "hamming_2bit";
    c.words_per_row = words;
    c.bytes_per_row = 8.0 * static_cast<double>(words);
    c.seconds = time_best(
        [&] {
          kernels::hamming_scan(codes.data(), codes.data(), rows, words,
                                dist.data());
          escape(dist.data());
        },
        target);
    std::printf("scan   %-13s %8.1f Mcodes/s  %7.2f GB/s  (%5.2fx fp32)\n",
                c.name.c_str(), static_cast<double>(rows) / c.seconds / 1e6,
                c.bytes_per_row * static_cast<double>(rows) / c.seconds / 1e9,
                s.fp32_seconds / c.seconds);
    s.cases.push_back(c);
  }
  std::printf("scan   %-13s %8.1f Mrows/s   %7.2f GB/s\n", "fp32_dot",
              static_cast<double>(rows) / s.fp32_seconds / 1e6,
              4.0 * static_cast<double>(dim * rows) / s.fp32_seconds / 1e9);
  return s;
}

// ---- query: end-to-end Index::query vs fp32 brute force --------------------

struct QueryCase {
  std::string name;
  double qps = 0.0;
  double speedup = 0.0;  // vs the fp32 brute-force query
};

struct QuerySection {
  std::int64_t rows = 0;
  double fp32_qps = 0.0;
  std::vector<QueryCase> cases;
};

QuerySection bench_query(const std::vector<float>& base, std::int64_t rows,
                         std::int64_t dim, double target) {
  QuerySection s;
  s.rows = rows;

  // fp32 brute force: normalized corpus resident, per query one dot_scan +
  // bounded top-k heap — the strongest exact baseline on this hardware.
  std::vector<float> nbase = base;
  kernels::l2_normalize_rows(nbase.data(), rows, dim, nullptr, 1e-12f);
  std::vector<float> scores(static_cast<std::size_t>(rows));
  std::vector<float> q(base.begin(), base.begin() + dim);
  kernels::l2_normalize_rows(q.data(), 1, dim, nullptr, 1e-12f);
  search::TopK heap;
  const double fp32_s = time_best(
      [&] {
        kernels::dot_scan(q.data(), nbase.data(), rows, dim, scores.data());
        heap.reset(kTopK);
        for (std::int64_t r = 0; r < rows; ++r) {
          // Monotone float->u32 key on the negated score (flip all bits of
          // negatives, set the sign bit of non-negatives), so the bounded
          // heap keeps exactly the k highest cosines.
          float neg = -scores[r];
          std::uint32_t bits;
          std::memcpy(&bits, &neg, sizeof(bits));
          bits = (bits & 0x80000000u) ? ~bits : (bits | 0x80000000u);
          heap.push({bits, r});
        }
        escape(heap.heap().data());
      },
      target);
  s.fp32_qps = 1.0 / fp32_s;

  std::vector<std::uint64_t> ids(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r)
    ids[r] = static_cast<std::uint64_t>(r);
  std::vector<search::Result> hits(static_cast<std::size_t>(kTopK));
  for (const auto layout :
       {search::CodeLayout::k1Bit, search::CodeLayout::k2Bit}) {
    search::IndexConfig icfg;
    icfg.dim = dim;
    icfg.layout = layout;
    icfg.store_embeddings = true;
    search::Index index(
        icfg, search::Binarizer::fit(base.data(), rows, dim, layout));
    index.add(base.data(), ids.data(), rows);
    search::QueryOptions opts;
    opts.k = kTopK;
    opts.overfetch = kOverfetch;
    opts.rerank = true;
    search::QueryScratch scratch;
    index.prepare(opts, scratch);
    QueryCase c;
    c.name = layout == search::CodeLayout::k1Bit ? "1bit_rerank"
                                                 : "2bit_rerank";
    const double sec = time_best(
        [&] {
          index.query(base.data(), opts, scratch, hits.data());
          escape(hits.data());
        },
        target);
    c.qps = 1.0 / sec;
    c.speedup = fp32_s / sec;
    std::printf("query  %-13s %8.0f qps  (%5.2fx fp32 brute force)\n",
                c.name.c_str(), c.qps, c.speedup);
    s.cases.push_back(c);
  }
  std::printf("query  %-13s %8.0f qps\n", "fp32_brute", s.fp32_qps);
  return s;
}

// ---- recall: CQ-pretrained vs plain SimCLR ---------------------------------

struct EncoderRecall {
  std::string name;
  search::RecallReport report;
};

std::vector<EncoderRecall> bench_recall(const core::DatasetBundle& bundle) {
  std::vector<EncoderRecall> out;
  for (int m = 0; m < 2; ++m) {
    const bool is_cq = m == 0;
    // Identical recipes to the paper-table benches, so the encoder
    // checkpoints come from (and land in) the shared pretrain cache.
    auto cfg = bench::standard_pretrain(
        bundle.name, is_cq ? core::CqVariant::kCqC : core::CqVariant::kVanilla,
        is_cq ? quant::PrecisionSet::range(6, 16) : quant::PrecisionSet());
    auto encoder = bench::pretrained_encoder("resnet18", bundle, cfg);
    const Tensor features = eval::extract_features(encoder, bundle.labeled, 32);
    search::RecallConfig rcfg;
    rcfg.k = kTopK;
    rcfg.overfetch = kOverfetch;
    EncoderRecall er;
    er.name = is_cq ? "cq" : "simclr";
    er.report = search::recall_vs_bits_features(
        features, std::max<std::int64_t>(features.dim(0) / 5, 1), rcfg);
    for (const auto& p : er.report.points)
      std::printf("recall %-6s %-12s %.0f bits/dim  recall@%lld %.3f\n",
                  er.name.c_str(), p.variant.c_str(), p.bits_per_dim,
                  static_cast<long long>(er.report.k), p.recall_at_k);
    out.push_back(std::move(er));
  }
  return out;
}

// ---- service: closed-loop end-to-end load ----------------------------------

struct ServiceResult {
  std::int64_t rows = 0;
  std::uint64_t queries = 0;
  double rps = 0.0;
  double p50_us = 0.0, p99_us = 0.0;
  double scan_codes_per_s = 0.0;
};

std::string service_checkpoint(std::int64_t h, std::int64_t w) {
  Rng rng(7);
  auto enc = models::make_encoder("resnet18", rng);
  enc.backbone->set_mode(nn::Mode::kTrain);
  for (int i = 0; i < 6; ++i) {  // warm batchnorm stats
    enc.forward(Tensor::uniform(Shape{4, 3, h, w}, rng));
    enc.backbone->clear_cache();
  }
  enc.backbone->set_mode(nn::Mode::kEval);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cq_bench_search_ckpt.bin")
          .string();
  models::save_module(path, *enc.backbone);
  return path;
}

ServiceResult run_service_load(std::int64_t rows, std::size_t clients,
                               int per_client) {
  constexpr std::int64_t kH = 8, kW = 8;
  search::ServiceConfig cfg;
  cfg.engine.checkpoint = service_checkpoint(kH, kW);
  cfg.engine.in_h = kH;
  cfg.engine.in_w = kW;
  cfg.engine.workers = 1;
  cfg.engine.max_batch = 8;
  cfg.engine.max_wait = std::chrono::microseconds(1000);

  // Index over synthetic unit-scale embeddings at the encoder's dim.
  Rng rng(0x5EA7C4);
  const std::int64_t dim = 64;
  std::vector<float> base(static_cast<std::size_t>(rows * dim));
  for (auto& v : base) v = rng.uniform(-1.0f, 1.0f);
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r)
    ids[r] = static_cast<std::uint64_t>(r);
  search::IndexConfig icfg;
  icfg.dim = dim;
  icfg.store_embeddings = true;
  search::Index index(
      icfg, search::Binarizer::fit(base.data(), rows, dim,
                                   search::CodeLayout::k1Bit));
  index.add(base.data(), ids.data(), rows);
  search::Service svc(cfg, std::move(index));

  search::QueryOptions opts;
  opts.k = kTopK;
  opts.overfetch = kOverfetch;
  opts.rerank = true;
  std::vector<Tensor> images;
  for (std::size_t c = 0; c < clients; ++c)
    images.push_back(Tensor::uniform(Shape{3, kH, kW}, rng, -1.0f, 1.0f));

  std::atomic<std::uint64_t> failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      search::Service::Context ctx;
      svc.prewarm(opts, ctx);
      std::vector<search::Result> hits(static_cast<std::size_t>(kTopK));
      std::int64_t n = 0;
      for (int i = 0; i < per_client; ++i)
        if (svc.search(images[c].data(), opts, ctx, hits.data(), &n) !=
                serve::Status::kOk ||
            n != kTopK)
          failures.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : threads) t.join();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  check(failures.load() == 0, "service load saw non-kOk searches");

  const auto stats = svc.search_stats();
  svc.stop();
  ServiceResult r;
  r.rows = rows;
  r.queries = stats.queries;
  r.rps = seconds > 0.0 ? static_cast<double>(stats.queries) / seconds : 0.0;
  r.p50_us = stats.e2e_latency.percentile(50.0);
  r.p99_us = stats.e2e_latency.percentile(99.0);
  r.scan_codes_per_s = stats.scan_codes_per_s;
  std::printf(
      "service %zu clients  %7.0f qps  p50 %7.0f us  p99 %7.0f us  "
      "scan %.1f Mcodes/s\n",
      clients, r.rps, r.p50_us, r.p99_us, r.scan_codes_per_s / 1e6);
  return r;
}

// ---- report ----------------------------------------------------------------

void write_json(const std::string& path, const ScanSection& scan,
                const QuerySection& query,
                const std::vector<EncoderRecall>& recall,
                const ServiceResult& service) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    ++g_failures;
    return;
  }
  double scan_speedup_1bit = 0.0, query_speedup_1bit = 0.0;
  for (const auto& c : scan.cases)
    if (c.name == "hamming_1bit") scan_speedup_1bit = scan.fp32_seconds /
                                                      c.seconds;
  for (const auto& c : query.cases)
    if (c.name == "1bit_rerank") query_speedup_1bit = c.speedup;
  double cq_recall = -1.0;
  for (const auto& er : recall)
    if (er.name == "cq") cq_recall = er.report.recall("1bit_rerank");

  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"search\",\n");
  std::fprintf(f,
               "  \"regenerate\": \"build/bench/search "
               "--json=BENCH_search.json\",\n");
  std::fprintf(f,
               "  \"hardware\": {\"cores\": %u, \"cq_threads\": %llu},\n",
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(core::configured_threads()));
  std::fprintf(f, "  \"bitwise_equivalent\": %s,\n",
               g_failures == 0 ? "true" : "false");
  std::fprintf(f,
               "  \"operating_point\": {\"k\": %lld, \"overfetch\": %lld, "
               "\"rerank\": true},\n",
               static_cast<long long>(kTopK),
               static_cast<long long>(kOverfetch));

  std::fprintf(f, "  \"scan\": {\"rows\": %lld, \"dim\": %lld,\n",
               static_cast<long long>(scan.rows),
               static_cast<long long>(scan.dim));
  std::fprintf(f,
               "    \"fp32_rows_per_s\": %.3e, \"fp32_gbps\": %.3f,\n",
               static_cast<double>(scan.rows) / scan.fp32_seconds,
               4.0 * static_cast<double>(scan.dim * scan.rows) /
                   scan.fp32_seconds / 1e9);
  std::fprintf(f, "    \"cases\": [\n");
  for (std::size_t i = 0; i < scan.cases.size(); ++i) {
    const ScanCase& c = scan.cases[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"words_per_row\": %lld, "
                 "\"codes_per_s\": %.3e, \"gbps\": %.3f, \"speedup\": "
                 "%.2f}%s\n",
                 c.name.c_str(), static_cast<long long>(c.words_per_row),
                 static_cast<double>(scan.rows) / c.seconds,
                 c.bytes_per_row * static_cast<double>(scan.rows) / c.seconds /
                     1e9,
                 scan.fp32_seconds / c.seconds,
                 i + 1 < scan.cases.size() ? "," : "");
  }
  std::fprintf(f, "    ]},\n");

  std::fprintf(f, "  \"query\": {\"rows\": %lld, \"fp32_qps\": %.1f,\n",
               static_cast<long long>(query.rows), query.fp32_qps);
  std::fprintf(f, "    \"cases\": [\n");
  for (std::size_t i = 0; i < query.cases.size(); ++i) {
    const QueryCase& c = query.cases[i];
    std::fprintf(f,
                 "      {\"name\": \"%s\", \"qps\": %.1f, \"speedup\": "
                 "%.2f}%s\n",
                 c.name.c_str(), c.qps, c.speedup,
                 i + 1 < query.cases.size() ? "," : "");
  }
  std::fprintf(f, "    ]},\n");

  std::fprintf(f, "  \"recall\": {\n");
  for (std::size_t e = 0; e < recall.size(); ++e) {
    const auto& er = recall[e];
    std::fprintf(f,
                 "    \"%s\": {\"base_rows\": %lld, \"num_queries\": %lld, "
                 "\"dim\": %lld, \"k\": %lld, \"points\": [\n",
                 er.name.c_str(), static_cast<long long>(er.report.base_rows),
                 static_cast<long long>(er.report.num_queries),
                 static_cast<long long>(er.report.dim),
                 static_cast<long long>(er.report.k));
    for (std::size_t i = 0; i < er.report.points.size(); ++i) {
      const auto& p = er.report.points[i];
      std::fprintf(f,
                   "      {\"variant\": \"%s\", \"bits_per_dim\": %.0f, "
                   "\"recall_at_10\": %.4f}%s\n",
                   p.variant.c_str(), p.bits_per_dim, p.recall_at_k,
                   i + 1 < er.report.points.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", e + 1 < recall.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");

  std::fprintf(f,
               "  \"service\": {\"rows\": %lld, \"queries\": %llu, "
               "\"rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
               "\"scan_codes_per_s\": %.3e},\n",
               static_cast<long long>(service.rows),
               static_cast<unsigned long long>(service.queries), service.rps,
               service.p50_us, service.p99_us, service.scan_codes_per_s);

  // The acceptance contract (ROADMAP.md): 1-bit search >=8x the fp32 exact
  // baseline — both the raw scan AND the end-to-end reranked query — while
  // the SAME operating point holds recall@10 >= 0.9 on the CQ-pretrained
  // encoder.
  const bool met = scan_speedup_1bit >= 8.0 && query_speedup_1bit >= 8.0 &&
                   cq_recall >= 0.9 && g_failures == 0;
  std::fprintf(f,
               "  \"headline\": {\"scan_speedup_1bit\": %.2f, "
               "\"query_speedup_1bit_rerank\": %.2f, "
               "\"recall_at_10\": %.4f, \"target_met\": %s}\n",
               scan_speedup_1bit, query_speedup_1bit, cq_recall,
               met ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s (target_met=%s)\n", path.c_str(),
              met ? "true" : "false");
  if (!met) {
    std::fprintf(stderr,
                 "headline target missed: scan speedup %.2f / query speedup "
                 "%.2f (both need >=8), recall@10 %.3f (need >=0.9)\n",
                 scan_speedup_1bit, query_speedup_1bit, cq_recall);
    ++g_failures;
  }
}

int smoke() {
  if (!equivalence_gate()) return 1;
  const auto r = run_service_load(/*rows=*/3000, /*clients=*/3,
                                  /*per_client=*/4);
  if (g_failures != 0 || r.queries != 12) {
    std::fprintf(stderr, "smoke burst failed: queries=%llu failures=%d\n",
                 static_cast<unsigned long long>(r.queries), g_failures);
    return 1;
  }
  std::printf("SEARCH_SMOKE_OK\n");
  return 0;
}

int run(const std::string& json_path) {
  if (!equivalence_gate()) return 1;

  // Corpus sized past LLC for the fp32 matrix (400k x 64 fp32 = 102 MB; the
  // 1-bit codes are 3.2 MB) — the deployment regime the codes exist for.
  const std::int64_t rows = 400000, dim = 64;
  Rng rng(0xB15EC);
  std::vector<float> base(static_cast<std::size_t>(rows * dim));
  for (auto& v : base) v = rng.uniform(-1.0f, 1.0f);

  const ScanSection scan = bench_scan(base, rows, dim, 0.2);
  const QuerySection query = bench_query(base, rows, dim, 0.2);
  std::vector<float>().swap(base);  // release 102 MB before pretraining

  const auto bundle = core::make_bundle("synth-cifar");
  const auto recall = bench_recall(bundle);
  const auto service = run_service_load(/*rows=*/100000, /*clients=*/4,
                                        /*per_client=*/32);

  if (!json_path.empty())
    write_json(json_path, scan, query, recall, service);
  if (g_failures) {
    std::fprintf(stderr, "%d check(s) FAILED\n", g_failures);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json;
  bool smoke_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke_only = true;
    } else {
      std::fprintf(stderr, "usage: search [--json=PATH] [--smoke]\n");
      return 2;
    }
  }
  return smoke_only ? smoke() : run(json);
}
