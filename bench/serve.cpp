// Closed-loop load generator for the serving engine: dynamic micro-batching
// vs a batch-1 serial baseline, fp32 and int8 instances.
//
// Protocol per instance kind:
//  1. Equivalence gate (before any timing): a batched compiled forward must
//     be BITWISE equal to per-sample forwards. A single mismatched bit
//     aborts the bench — a throughput number for a wrong answer is noise.
//  2. Serial baseline: Engine with max_batch=1 under N closed-loop clients
//     (each submits, waits, repeats).
//  3. Batched: same engine configuration except max_batch/max_wait let the
//     worker coalesce the concurrent clients into micro-batches.
//
// The headline is batched/serial throughput; the engine must hold
// equal-or-better p99 while doing it (on one core the win comes from
// amortizing GEMM weight packing and per-call overhead across the batch,
// not from parallelism). After the per-kind headline, a scale-out section
// sweeps worker counts (sharded queues + work stealing) into a load matrix
// (clients x workers x batch caps), a gated scaling curve with
// scaling_efficiency normalized by min(workers, cores), and a burst-spike
// p99. `--json=PATH` writes BENCH_serve.json;
// `--smoke` runs the equivalence gates plus a short burst (CI, TSan);
// `--trace=PATH` enables the scoped-span tracer and writes a
// chrome://tracing document covering the whole load (worker threads show as
// separate tids; forward/collate spans carry the batch width under args.n).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/threadpool.hpp"
#include "core/trace.hpp"
#include "deploy/int8.hpp"
#include "models/encoder.hpp"
#include "serve/engine.hpp"
#include "serve/fp32.hpp"
#include "util/rng.hpp"

using namespace cq;

namespace {

// Thumbnail-sized inputs: the deep stages then run one or two output pixels
// per image, which is exactly where batch-1 serving is dominated by
// per-GEMM-call weight packing — the cost dynamic batching amortizes.
constexpr std::int64_t kH = 8, kW = 8;

// Load shape: kClients windowed closed-loop clients, and kRounds alternating
// serial/batched measurement rounds per instance kind. The host is a shared
// box, so interference is strictly additive noise; the best round per mode is
// the closest estimate of the uncontended machine, and alternating rounds
// keeps slow drift from biasing one mode.
constexpr std::size_t kClients = 8;
constexpr int kRounds = 3;

std::string make_checkpoint() {
  Rng rng(7);
  auto enc = models::make_encoder("resnet18", rng);
  enc.backbone->set_mode(nn::Mode::kTrain);
  for (int i = 0; i < 10; ++i) {
    enc.forward(Tensor::uniform(Shape{4, 3, kH, kW}, rng));
    enc.backbone->clear_cache();
  }
  enc.backbone->set_mode(nn::Mode::kEval);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cq_bench_serve_ckpt.bin")
          .string();
  models::save_module(path, *enc.backbone);
  return path;
}

models::Encoder load_encoder(const std::string& checkpoint) {
  Rng rng(1);
  auto enc = models::make_encoder("resnet18", rng);
  models::load_module(checkpoint, *enc.backbone);
  enc.policy->set_full_precision();
  enc.backbone->set_mode(nn::Mode::kEval);
  return enc;
}

std::vector<Tensor> make_inputs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> v;
  for (std::size_t i = 0; i < n; ++i)
    v.push_back(Tensor::uniform(Shape{1, 3, kH, kW}, rng, -1.0f, 1.0f));
  return v;
}

Tensor collate(const std::vector<Tensor>& inputs) {
  const auto n = static_cast<std::int64_t>(inputs.size());
  const auto per = inputs[0].numel();
  Tensor batch(Shape{n, 3, kH, kW});
  for (std::int64_t i = 0; i < n; ++i)
    std::memcpy(batch.data() + i * per, inputs[static_cast<std::size_t>(i)].data(),
                static_cast<std::size_t>(per) * sizeof(float));
  return batch;
}

/// Bitwise batched-vs-serial gate for one instance kind. Returns true when
/// every feature of every sample matches exactly.
bool equivalence_gate(const std::string& checkpoint, serve::InstanceKind kind) {
  auto enc = load_encoder(checkpoint);
  auto instance =
      serve::make_instance(kind, *enc.backbone, Shape{3, kH, kW}, 8);
  const auto inputs = make_inputs(8, 21);
  const Tensor batch = collate(inputs);
  Tensor batched = instance->forward(batch);  // copy: scratch is reused below
  std::uint64_t mismatches = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const Tensor& single = instance->forward(inputs[i]);
    for (std::int64_t c = 0; c < single.dim(1); ++c)
      if (batched.at(static_cast<std::int64_t>(i), c) != single.at(0, c))
        ++mismatches;
  }
  if (mismatches > 0)
    std::fprintf(stderr, "EQUIVALENCE FAILURE (%s): %llu mismatched values\n",
                 serve::instance_kind_name(kind),
                 static_cast<unsigned long long>(mismatches));
  return mismatches == 0;
}

struct LoadResult {
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
  std::uint64_t served = 0;
  std::uint64_t stolen = 0;
  std::uint64_t steady_heap_allocs = 0;
};

/// Closed-loop load with windowed clients: each of `clients` threads keeps
/// `kWindow` requests outstanding (submit the window, then reap it),
/// `per_client` windows each. Both the serial and batched engines face the
/// identical client program. Throughput is measured over the load window
/// only (engine construction/prewarm excluded).
constexpr int kWindow = 8;

LoadResult run_load(const serve::EngineConfig& cfg, std::size_t clients,
                    int per_client) {
  serve::Engine engine(cfg);
  const auto inputs = make_inputs(clients, 33);
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const auto dim = static_cast<std::size_t>(engine.feature_dim());
      std::vector<float> out(dim * kWindow);
      std::vector<serve::Request> window(kWindow);
      for (int i = 0; i < per_client; ++i) {
        for (int s = 0; s < kWindow; ++s) {
          serve::Request& r = window[static_cast<std::size_t>(s)];
          r.reset();
          r.input = inputs[c].data();
          r.output = out.data() + static_cast<std::size_t>(s) * dim;
          while (!engine.submit(&r))  // backpressure: retry after yielding
            std::this_thread::yield();
        }
        for (auto& r : window) r.wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto stats = engine.stats();
  engine.stop();

  LoadResult r;
  r.served = stats.served;
  r.rps = seconds > 0.0 ? static_cast<double>(stats.served) / seconds : 0.0;
  r.p50_us = stats.total_latency.percentile(50.0);
  r.p99_us = stats.total_latency.percentile(99.0);
  r.mean_batch = stats.mean_batch_size;
  r.stolen = stats.stolen;
  r.steady_heap_allocs = stats.steady_heap_allocs;
  return r;
}

// Best-per-METRIC selection across rounds, not best-round: on a shared
// host, the round with the best throughput is not necessarily the round
// with the clean tail — p99 under closed-loop saturation is the noisiest
// number here, and taking its own minimum keeps the checked-in baseline
// (and the CI gate comparing against it) near the uncontended machine.
void merge_best(LoadResult& best, const LoadResult& r, bool first) {
  if (first || r.rps > best.rps) {
    const double p50 = best.p50_us, p99 = best.p99_us;
    best = r;
    if (!first) {
      best.p50_us = std::min(p50, r.p50_us);
      best.p99_us = std::min(p99, r.p99_us);
    }
  } else {
    best.p50_us = std::min(best.p50_us, r.p50_us);
    best.p99_us = std::min(best.p99_us, r.p99_us);
  }
}

struct KindResult {
  const char* kind;
  bool equivalent = false;
  LoadResult serial, batched;
  double speedup = 0.0;
};

KindResult bench_kind(const std::string& checkpoint, serve::InstanceKind kind,
                      std::size_t clients, int per_client) {
  KindResult res;
  res.kind = serve::instance_kind_name(kind);
  res.equivalent = equivalence_gate(checkpoint, kind);
  if (!res.equivalent) return res;

  serve::EngineConfig cfg;
  cfg.checkpoint = checkpoint;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.instance = kind;
  cfg.workers = 1;  // single-core box: batching, not parallelism
  cfg.queue_capacity = 256;

  serve::EngineConfig serial_cfg = cfg;
  serial_cfg.max_batch = 1;  // serial baseline: every request its own forward
  serial_cfg.max_wait = std::chrono::microseconds(0);
  serve::EngineConfig batched_cfg = cfg;
  batched_cfg.max_batch = 32;
  batched_cfg.max_wait = std::chrono::microseconds(2000);

  for (int round = 0; round < kRounds; ++round) {
    merge_best(res.serial, run_load(serial_cfg, clients, per_client),
               round == 0);
    merge_best(res.batched, run_load(batched_cfg, clients, per_client),
               round == 0);
  }

  res.speedup = res.serial.rps > 0.0 ? res.batched.rps / res.serial.rps : 0.0;
  std::printf(
      "%-5s serial %7.0f rps (p99 %7.0f us) | batched %7.0f rps "
      "(p99 %7.0f us, mean batch %.1f) | speedup %.2fx | steady allocs %llu\n",
      res.kind, res.serial.rps, res.serial.p99_us, res.batched.rps,
      res.batched.p99_us, res.batched.mean_batch, res.speedup,
      static_cast<unsigned long long>(res.batched.steady_heap_allocs));
  return res;
}

// ---------------------------------------------------------------------------
// Scale-out: load matrix + scaling curve over worker counts. The serving
// layer shards its lock-free queue per worker and steals across shards;
// these runs measure what that buys as workers grow.
// ---------------------------------------------------------------------------

// Worker counts swept; the largest is the "max workers" headline. On a
// single-core host extra workers cannot add throughput, so the gated
// summary normalizes: scaling_efficiency = (rps_max_w / rps_1w) /
// min(workers_max, cores). Healthy scale-out sits near 1.0 on a multi-core
// host; on one core it lands below 1.0 because splitting a single core's
// request stream across N shards fragments the micro-batches (mean batch
// 32 -> 32/N) and gives back some amortization — the gate pins that cost
// so sharding overhead cannot silently grow.
constexpr std::size_t kWorkerSweep[] = {1, 2, 4};

serve::EngineConfig scale_config(const std::string& checkpoint,
                                 std::size_t workers, std::size_t max_batch) {
  serve::EngineConfig cfg;
  cfg.checkpoint = checkpoint;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.instance = serve::InstanceKind::kInt8;  // the compute path's headline
  cfg.workers = workers;
  cfg.queue_capacity = 256;
  cfg.max_batch = max_batch;
  cfg.max_wait = std::chrono::microseconds(max_batch > 1 ? 2000 : 0);
  return cfg;
}

struct MatrixCell {
  std::size_t workers = 0;
  std::size_t clients = 0;
  std::size_t max_batch = 0;
  LoadResult load;
};

/// Load matrix: clients x workers x batch caps, one round per cell. The
/// cells chart the response surface (and exercise the steal path: few
/// clients + many workers leaves shards empty); the CI-gated numbers come
/// from the best-of-rounds scaling sweep below, not from here.
std::vector<MatrixCell> run_matrix(const std::string& checkpoint) {
  std::vector<MatrixCell> cells;
  for (std::size_t workers : kWorkerSweep)
    for (std::size_t clients : {std::size_t{2}, std::size_t{8}})
      for (std::size_t mb : {std::size_t{1}, std::size_t{32}}) {
        MatrixCell cell;
        cell.workers = workers;
        cell.clients = clients;
        cell.max_batch = mb;
        cell.load = run_load(scale_config(checkpoint, workers, mb), clients,
                             /*per_client=*/4);
        std::printf(
            "matrix w=%zu c=%zu mb=%-2zu | %7.0f rps  p99 %7.0f us  "
            "mean batch %4.1f  stolen %llu\n",
            workers, clients, mb, cell.load.rps, cell.load.p99_us,
            cell.load.mean_batch,
            static_cast<unsigned long long>(cell.load.stolen));
        cells.push_back(cell);
      }
  return cells;
}

struct ScalePoint {
  std::size_t workers = 0;
  LoadResult load;
};

struct ScalingResult {
  std::vector<ScalePoint> curve;
  std::size_t workers_max = 0;
  double rps_1w = 0.0;
  double rps_max_w = 0.0;
  double efficiency = 0.0;    // (rps_max_w / rps_1w) / min(workers_max, cores)
  double spike_p99_us = 0.0;  // p99 under a one-shot burst at max workers
};

/// One-shot burst: submit `burst` requests back-to-back from a single
/// thread (yield-retry on backpressure), then wait for all of them. The
/// returned p99 of total request latency is the tail of a queue-depth
/// spike — the number the sharded queues + stealing must keep bounded.
double run_spike(const serve::EngineConfig& cfg, std::size_t burst) {
  serve::Engine engine(cfg);
  const auto inputs = make_inputs(8, 55);
  const auto dim = static_cast<std::size_t>(engine.feature_dim());
  std::vector<float> out(dim * burst);
  std::vector<serve::Request> reqs(burst);
  for (std::size_t i = 0; i < burst; ++i) {
    serve::Request& r = reqs[i];
    r.input = inputs[i % inputs.size()].data();
    r.output = out.data() + i * dim;
    while (!engine.submit(&r)) std::this_thread::yield();
  }
  for (auto& r : reqs) r.wait();
  const auto stats = engine.stats();
  engine.stop();
  return stats.total_latency.percentile(99.0);
}

ScalingResult run_scaling(const std::string& checkpoint) {
  ScalingResult res;
  for (std::size_t workers : kWorkerSweep) {
    ScalePoint pt;
    pt.workers = workers;
    const auto cfg = scale_config(checkpoint, workers, 32);
    for (int round = 0; round < kRounds; ++round)
      merge_best(pt.load, run_load(cfg, kClients, /*per_client=*/12),
                 round == 0);
    std::printf("scale  w=%zu | %7.0f rps  p99 %7.0f us  stolen %llu\n",
                workers, pt.load.rps, pt.load.p99_us,
                static_cast<unsigned long long>(pt.load.stolen));
    res.curve.push_back(pt);
  }
  res.workers_max = res.curve.back().workers;
  res.rps_1w = res.curve.front().load.rps;
  res.rps_max_w = res.curve.back().load.rps;
  const std::size_t cores =
      std::max(1u, std::thread::hardware_concurrency());
  const auto ideal = static_cast<double>(
      std::min<std::size_t>(res.workers_max, cores));
  res.efficiency =
      res.rps_1w > 0.0 ? (res.rps_max_w / res.rps_1w) / ideal : 0.0;

  const auto spike_cfg = scale_config(checkpoint, res.workers_max, 32);
  for (int round = 0; round < kRounds; ++round) {
    const double p99 = run_spike(spike_cfg, /*burst=*/192);
    res.spike_p99_us = round == 0 ? p99 : std::min(res.spike_p99_us, p99);
  }
  std::printf("scale  efficiency %.2f (x%.2f over %zu workers, %zu cores) | "
              "spike p99 %7.0f us\n",
              res.efficiency,
              res.rps_1w > 0.0 ? res.rps_max_w / res.rps_1w : 0.0,
              res.workers_max, cores, res.spike_p99_us);
  return res;
}

void write_json(const std::string& path, const KindResult& fp32,
                const KindResult& int8, const ScalingResult& scaling,
                const std::vector<MatrixCell>& matrix) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  auto emit = [f](const KindResult& r, const char* trailing) {
    std::fprintf(
        f,
        "  \"%s\": {\"bitwise_equivalent\": %s, "
        "\"serial\": {\"rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"served\": %llu}, "
        "\"batched\": {\"rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"served\": %llu, \"mean_batch\": %.2f, \"steady_heap_allocs\": "
        "%llu}, \"speedup\": %.2f}%s\n",
        r.kind, r.equivalent ? "true" : "false", r.serial.rps, r.serial.p50_us,
        r.serial.p99_us, static_cast<unsigned long long>(r.serial.served),
        r.batched.rps, r.batched.p50_us, r.batched.p99_us,
        static_cast<unsigned long long>(r.batched.served), r.batched.mean_batch,
        static_cast<unsigned long long>(r.batched.steady_heap_allocs),
        r.speedup, trailing);
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve\",\n");
  std::fprintf(f,
               "  \"regenerate\": \"build/bench/serve "
               "--json=BENCH_serve.json\",\n");
  std::fprintf(f,
               "  \"setup\": {\"arch\": \"resnet18\", \"input\": "
               "\"3x%lldx%lld\", \"workers\": 1, \"clients\": %llu, "
               "\"client_window\": %d, \"max_batch\": 32, "
               "\"max_wait_us\": 2000, \"rounds\": %d, \"selection\": "
               "\"best value per metric across rounds (throughput round for "
               "rps, min latency), rounds alternated — shared-host "
               "interference is additive\", \"note\": "
               "\"single-core host: speedup comes from batched GEMM "
               "amortization, not thread parallelism\"},\n",
               static_cast<long long>(kH), static_cast<long long>(kW),
               static_cast<unsigned long long>(kClients), kWindow, kRounds);
  // The host this baseline was generated on: the scaling numbers only mean
  // anything next to the core count, and CI compares like against like.
  std::fprintf(f,
               "  \"hardware\": {\"cores\": %u, \"cq_threads\": %llu},\n",
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(core::configured_threads()));
  emit(fp32, ",");
  emit(int8, ",");
  std::fprintf(f, "  \"load_matrix\": [\n");
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const MatrixCell& c = matrix[i];
    std::fprintf(
        f,
        "    {\"workers\": %llu, \"clients\": %llu, \"max_batch\": %llu, "
        "\"rps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"mean_batch\": %.2f, \"served\": %llu, \"stolen\": %llu}%s\n",
        static_cast<unsigned long long>(c.workers),
        static_cast<unsigned long long>(c.clients),
        static_cast<unsigned long long>(c.max_batch), c.load.rps,
        c.load.p50_us, c.load.p99_us, c.load.mean_batch,
        static_cast<unsigned long long>(c.load.served),
        static_cast<unsigned long long>(c.load.stolen),
        i + 1 < matrix.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"scaling\": {\"curve\": [\n");
  for (std::size_t i = 0; i < scaling.curve.size(); ++i) {
    const ScalePoint& pt = scaling.curve[i];
    std::fprintf(f,
                 "    {\"workers\": %llu, \"rps\": %.1f, \"p99_us\": %.1f, "
                 "\"mean_batch\": %.2f, \"stolen\": %llu}%s\n",
                 static_cast<unsigned long long>(pt.workers), pt.load.rps,
                 pt.load.p99_us, pt.load.mean_batch,
                 static_cast<unsigned long long>(pt.load.stolen),
                 i + 1 < scaling.curve.size() ? "," : "");
  }
  std::fprintf(f,
               "  ], \"workers_max\": %llu, \"rps_1w\": %.1f, "
               "\"rps_max_w\": %.1f, \"scaling_efficiency\": %.3f, "
               "\"spike_p99_us\": %.1f},\n",
               static_cast<unsigned long long>(scaling.workers_max),
               scaling.rps_1w, scaling.rps_max_w, scaling.efficiency,
               scaling.spike_p99_us);
  // Aggregate profiler table, cumulative over both kinds and all rounds:
  // per-phase serve-pipeline and kernel wall time.
  std::fprintf(f, "  \"profile\": %s\n", prof::json().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int smoke(const std::string& checkpoint) {
  if (!equivalence_gate(checkpoint, serve::InstanceKind::kFp32)) return 1;
  if (!equivalence_gate(checkpoint, serve::InstanceKind::kInt8)) return 1;
  serve::EngineConfig cfg;
  cfg.checkpoint = checkpoint;
  cfg.in_h = kH;
  cfg.in_w = kW;
  cfg.workers = 1;
  cfg.max_batch = 4;
  cfg.max_wait = std::chrono::microseconds(1000);
  const auto r = run_load(cfg, 4, 1);
  if (r.served != 32 || r.steady_heap_allocs != 0) {
    std::fprintf(stderr, "smoke burst failed: served=%llu steady_allocs=%llu\n",
                 static_cast<unsigned long long>(r.served),
                 static_cast<unsigned long long>(r.steady_heap_allocs));
    return 1;
  }
  std::printf("SERVE_SMOKE_OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, trace_path;
  bool smoke_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke_only = true;
  }
  if (!trace_path.empty()) trace::enable(true);

  const std::string checkpoint = make_checkpoint();
  int rc;
  if (smoke_only) {
    rc = smoke(checkpoint);
  } else {
    // Same load for both kinds: the int8 GEMM path serves at fp32-or-better
    // throughput, so it no longer needs a shorter run to finish on time.
    const auto fp32 =
        bench_kind(checkpoint, serve::InstanceKind::kFp32, kClients, 38);
    const auto int8 =
        bench_kind(checkpoint, serve::InstanceKind::kInt8, kClients, 38);
    rc = fp32.equivalent && int8.equivalent ? 0 : 1;
    if (rc == 0) {
      const auto scaling = run_scaling(checkpoint);
      const auto matrix = run_matrix(checkpoint);
      if (!json_path.empty())
        write_json(json_path, fp32, int8, scaling, matrix);
    }
  }

  if (!trace_path.empty()) {
    // Export at a quiescent point: every Engine above has been stopped (its
    // destructor joins the workers), so all rings are complete.
    trace::enable(false);
    if (trace_export::chrome(trace_path))
      std::printf("wrote %s (%zu spans, %llu dropped)\n", trace_path.c_str(),
                  trace::span_count(),
                  static_cast<unsigned long long>(trace::dropped()));
    else
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
  }
  return rc;
}
