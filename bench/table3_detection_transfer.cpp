// Table 3: transfer of the (ImageNet stand-in) pretrained encoders to the
// synthetic single-object detection task — AP / AP50 / AP75, mirroring the
// paper's Pascal VOC + YOLO transfer.
#include "bench_common.hpp"
#include "detect/ap.hpp"
#include "detect/dataset.hpp"
#include "detect/head.hpp"
#include "models/resnet.hpp"

using namespace cq;

int main() {
  bench::print_preamble(
      "Table 3 — transfer to detection",
      "Frozen pretrained trunks + grid detection head on synthetic "
      "localization canvases (Pascal VOC stand-in). AP in percent.");

  const auto bundle = core::make_bundle("synth-imagenet");
  detect::DetectionConfig dcfg;
  dcfg.synth = bundle.config;
  Rng data_rng(555);
  const auto det_train = detect::make_detection_dataset(
      dcfg, core::env_int("CQ_DET_TRAIN", 160), data_rng);
  const auto det_test = detect::make_detection_dataset(
      dcfg, core::env_int("CQ_DET_TEST", 96), data_rng);

  // Paper Table 3 reference values (AP, AP50, AP75).
  const float paper[2][3][3] = {
      {{25.09f, 49.20f, 22.74f},
       {32.94f, 63.96f, 29.28f},
       {36.39f, 69.08f, 32.64f}},
      {{35.58f, 67.51f, 31.88f},
       {36.54f, 68.77f, 34.17f},
       {38.77f, 72.13f, 35.85f}},
  };

  TableWriter table({"Network", "Method", "AP", "AP50", "AP75"});
  const char* archs[] = {"resnet18", "resnet34"};
  const struct {
    const char* name;
    core::CqVariant variant;
    int lo, hi;
  } methods[] = {{"Vanilla SimCLR", core::CqVariant::kVanilla, 0, 0},
                 {"CQ-C", core::CqVariant::kCqC, 8, 16},
                 {"CQ-A", core::CqVariant::kCqA, 6, 16}};

  for (int a = 0; a < 2; ++a) {
    for (int m = 0; m < 3; ++m) {
      auto cfg = bench::standard_pretrain(
          bundle.name, methods[m].variant,
          methods[m].lo > 0
              ? quant::PrecisionSet::range(methods[m].lo, methods[m].hi)
              : quant::PrecisionSet());
      // Pretrain (or load cached) pooled encoder, then move its weights
      // into a spatial trunk (GAP has no parameters).
      auto encoder = bench::pretrained_encoder(archs[a], bundle, cfg);
      const std::string tmp_ckpt = core::cache_dir() + "/tmp_trunk.ckpt";
      models::save_module(tmp_ckpt, *encoder.backbone);

      Rng trunk_rng(1);
      auto policy = std::make_shared<quant::QuantPolicy>();
      std::int64_t trunk_dim = 0;
      auto trunk = models::build_resnet(
          std::string(archs[a]) == "resnet18" ? models::resnet18_config()
                                              : models::resnet34_config(),
          policy, trunk_rng, &trunk_dim, /*include_gap=*/false);
      models::load_module(tmp_ckpt, *trunk);

      detect::DetectorConfig det_cfg;
      det_cfg.epochs = core::env_int("CQ_DET_EPOCHS", 30);
      detect::Detector detector(*trunk, trunk_dim, det_cfg);
      detector.train(det_train);
      const auto ap = detect::evaluate_ap(detector.detect(det_test),
                                          det_test.boxes);
      table.add_row({archs[a], methods[m].name,
                     bench::cell(100.0f * ap.ap, paper[a][m][0]),
                     bench::cell(100.0f * ap.ap50, paper[a][m][1]),
                     bench::cell(100.0f * ap.ap75, paper[a][m][2])});
    }
  }
  table.print();
  return 0;
}
