// Steady-state allocation/throughput bench for the pooled-tensor pipeline.
//
// Trains each CQ variant for a few epochs on the synthetic CIFAR stand-in
// and reports, per variant: ms per iteration at steady state, heap
// allocations during the first (cold-pool) iteration — which approximates
// the pre-pool per-iteration allocation behavior, since a cold pool misses
// on exactly the tensors the old Tensor malloc'd every iteration — and heap
// allocations per iteration once the pool is warm. The headline number is
// the steady-state reduction vs the cold baseline.
//
// Usage: pipeline_alloc [--json=PATH] [--trace=PATH]   (JSON is the
// BENCH_pipeline.json checked into the repo root; regenerate after touching
// tensor/nn/quant. --trace enables the scoped-span tracer and writes a
// chrome://tracing document covering every variant's run.)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/simclr.hpp"
#include "core/trace.hpp"
#include "data/synth.hpp"
#include "tensor/storage.hpp"
#include "util/table.hpp"

using namespace cq;

namespace {

struct VariantResult {
  std::string name;
  int branches = 0;
  std::int64_t iterations = 0;
  double ms_per_iter = 0.0;
  std::uint64_t first_iter_allocs = 0;
  double steady_allocs_per_iter = 0.0;
  double reduction_pct = 0.0;
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
};

VariantResult run_variant(core::CqVariant variant,
                          const data::Dataset& dataset) {
  core::PretrainConfig cfg;
  cfg.variant = variant;
  if (variant != core::CqVariant::kVanilla)
    cfg.precisions = quant::PrecisionSet::range(6, 16);
  if (variant == core::CqVariant::kCqQuant) cfg.augment.identity = true;
  cfg.epochs = 3;
  cfg.batch_size = 16;
  cfg.lr = 0.05f;
  cfg.warmup_epochs = 0;
  cfg.proj_hidden = 32;
  cfg.proj_dim = 16;
  cfg.seed = 7;

  // Fresh encoder per variant; trim the pool so every variant starts cold
  // and first-iteration numbers are comparable.
  tensor::trim_pool();
  Rng rng(42);
  auto encoder = models::make_encoder("resnet18", rng);
  core::SimClrCqTrainer trainer(encoder, cfg);
  const auto stats = trainer.train(dataset);

  VariantResult r;
  r.name = core::variant_name(variant);
  r.branches = core::branches_per_iteration(variant);
  r.iterations = stats.iterations;
  if (!stats.epoch_seconds.empty() && stats.iterations > 0) {
    const auto iters_per_epoch =
        stats.iterations / static_cast<std::int64_t>(stats.epoch_seconds.size());
    if (iters_per_epoch > 0)
      r.ms_per_iter = stats.epoch_seconds.back() * 1000.0 /
                      static_cast<double>(iters_per_epoch);
  }
  r.first_iter_allocs = stats.first_iteration_heap_allocs;
  r.steady_allocs_per_iter = stats.steady_allocs_per_iteration;
  if (r.first_iter_allocs > 0)
    r.reduction_pct = 100.0 * (1.0 - r.steady_allocs_per_iter /
                                         static_cast<double>(
                                             r.first_iter_allocs));
  r.pool_hits = stats.pool_hits;
  r.pool_misses = stats.pool_misses;
  return r;
}

void write_json(const std::string& path,
                const std::vector<VariantResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"pipeline_alloc\",\n");
  std::fprintf(f, "  \"unit\": \"heap allocations per iteration\",\n");
  std::fprintf(
      f,
      "  \"regenerate\": \"build/bench/pipeline_alloc "
      "--json=BENCH_pipeline.json\",\n");
  std::fprintf(
      f,
      "  \"baseline\": \"first (cold-pool) iteration: every pool miss there "
      "is a malloc the pre-pool Tensor paid per iteration\",\n");
  std::fprintf(f, "  \"setup\": {\"arch\": \"resnet18\", \"dataset\": "
                  "\"synth-cifar-64\", \"batch\": 16, \"epochs\": 3},\n");
  std::fprintf(f, "  \"variants\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"branches\": %d, \"iterations\": %lld, "
        "\"ms_per_iter\": %.2f, \"first_iter_heap_allocs\": %llu, "
        "\"steady_allocs_per_iter\": %.3f, \"reduction_pct\": %.2f, "
        "\"pool_hits\": %llu, \"pool_misses\": %llu}%s\n",
        r.name.c_str(), r.branches,
        static_cast<long long>(r.iterations), r.ms_per_iter,
        static_cast<unsigned long long>(r.first_iter_allocs),
        r.steady_allocs_per_iter, r.reduction_pct,
        static_cast<unsigned long long>(r.pool_hits),
        static_cast<unsigned long long>(r.pool_misses),
        i + 1 < results.size() ? "," : "");
  }
  // Aggregate profiler table, cumulative over every variant above: where
  // the iteration time actually goes (gemm, pack, im2col, augment, ...).
  std::fprintf(f, "  ],\n  \"profile\": %s\n}\n", prof::json().c_str());
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--trace=", 8) == 0) trace_path = argv[i] + 8;
  }
  if (!trace_path.empty()) trace::enable(true);

  auto scfg = data::synth_cifar_config();
  Rng data_rng(scfg.seed);
  const auto dataset = data::make_synth_dataset(scfg, 64, data_rng);

  const core::CqVariant variants[] = {
      core::CqVariant::kVanilla, core::CqVariant::kCqA,
      core::CqVariant::kCqB, core::CqVariant::kCqC,
      core::CqVariant::kCqQuant};

  std::vector<VariantResult> results;
  for (auto v : variants) {
    results.push_back(run_variant(v, dataset));
    const auto& r = results.back();
    std::printf("%-9s branches=%d iters=%lld ms/iter=%.1f cold=%llu "
                "steady=%.2f/iter reduction=%.1f%%\n",
                r.name.c_str(), r.branches,
                static_cast<long long>(r.iterations), r.ms_per_iter,
                static_cast<unsigned long long>(r.first_iter_allocs),
                r.steady_allocs_per_iter, r.reduction_pct);
  }

  if (!json_path.empty()) write_json(json_path, results);
  if (!trace_path.empty()) {
    trace::enable(false);
    if (trace_export::chrome(trace_path))
      std::printf("wrote %s (%zu spans, %llu dropped)\n", trace_path.c_str(),
                  trace::span_count(),
                  static_cast<unsigned long long>(trace::dropped()));
    else
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
  }
  return 0;
}
