// Graph-compiler bench: compile time, planned-vs-naive arena footprint, and
// compiled-vs-eager forward latency for both serving precisions
// (regenerates the repo-root BENCH_compile.json).
//
// Protocol per precision:
//  1. Equivalence gate: the compiled plan's batch forward must be BITWISE
//     equal to the eager twin (serve::Fp32Network / deploy::Int8Network).
//     A mismatch aborts the bench — latency for a wrong answer is noise.
//  2. Compile time: median of a few trace->passes->plan->prepack runs.
//  3. Latency: best per-forward time over alternating eager/compiled rounds
//     (shared host; the minimum estimates the uncontended machine).
//
// Gated metrics (tools/bench_check defaults): reduction_pct and speedup
// (higher better) plus bitwise_equivalent. compile_ms and the raw *_bytes
// stay ungated — compile time is machine weather and the byte counts are
// exact, deterministic facts better eyeballed in review diffs.
//
// `--json=PATH` writes the JSON; `--smoke` runs the equivalence gates plus
// one timing iteration (CI).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "deploy/int8.hpp"
#include "graph/executor.hpp"
#include "models/encoder.hpp"
#include "serve/fp32.hpp"
#include "util/rng.hpp"

using namespace cq;

namespace {

constexpr std::int64_t kH = 8, kW = 8, kBatch = 8;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string make_checkpoint() {
  Rng rng(7);
  auto enc = models::make_encoder("resnet18", rng);
  enc.backbone->set_mode(nn::Mode::kTrain);
  for (int i = 0; i < 10; ++i) {
    enc.forward(Tensor::uniform(Shape{4, 3, kH, kW}, rng));
    enc.backbone->clear_cache();
  }
  enc.backbone->set_mode(nn::Mode::kEval);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cq_bench_compile_ckpt.bin")
          .string();
  models::save_module(path, *enc.backbone);
  return path;
}

models::Encoder load_encoder(const std::string& checkpoint) {
  Rng rng(1);
  auto enc = models::make_encoder("resnet18", rng);
  models::load_module(checkpoint, *enc.backbone);
  enc.policy->set_full_precision();
  enc.backbone->set_mode(nn::Mode::kEval);
  return enc;
}

struct PrecisionResult {
  const char* name = "";
  bool equivalent = false;
  double compile_ms = 0.0;
  long long arena_bytes = 0;
  long long naive_bytes = 0;
  double reduction_pct = 0.0;
  double eager_us = 0.0;
  double compiled_us = 0.0;
  double speedup = 0.0;
};

template <typename EagerForward>
PrecisionResult bench_precision(const std::string& checkpoint,
                                graph::Precision precision, const char* name,
                                EagerForward eager_forward, bool smoke) {
  PrecisionResult res;
  res.name = name;
  auto enc = load_encoder(checkpoint);

  // Compile time: median of repeated full compiles (trace, passes, plan,
  // prepack). Reported but NOT gated — pure machine weather.
  const graph::CompileOptions opts{kBatch, precision, /*run_passes=*/true};
  std::vector<double> compile_times;
  const int compile_reps = smoke ? 1 : 5;
  for (int i = 0; i < compile_reps; ++i) {
    const auto t0 = Clock::now();
    auto m = graph::compile(*enc.backbone, Shape{3, kH, kW}, opts);
    compile_times.push_back(ms_since(t0));
  }
  std::sort(compile_times.begin(), compile_times.end());
  res.compile_ms = compile_times[compile_times.size() / 2];

  auto model = graph::compile(*enc.backbone, Shape{3, kH, kW}, opts);
  res.arena_bytes = static_cast<long long>(model.plan().arena_bytes);
  res.naive_bytes = static_cast<long long>(model.plan().naive_bytes);
  res.reduction_pct =
      res.naive_bytes > 0
          ? 100.0 * (1.0 - static_cast<double>(res.arena_bytes) /
                               static_cast<double>(res.naive_bytes))
          : 0.0;

  Rng rng(21);
  const Tensor batch =
      Tensor::uniform(Shape{kBatch, 3, kH, kW}, rng, -1.0f, 1.0f);

  // Equivalence gate before any timing.
  const Tensor eager_out = eager_forward(batch);
  const Tensor& compiled_out = model.forward(batch);
  std::uint64_t mismatches = 0;
  for (std::int64_t i = 0; i < eager_out.numel(); ++i)
    if (eager_out.data()[i] != compiled_out.data()[i]) ++mismatches;
  res.equivalent = mismatches == 0;
  if (!res.equivalent) {
    std::fprintf(stderr, "EQUIVALENCE FAILURE (%s): %llu mismatched values\n",
                 name, static_cast<unsigned long long>(mismatches));
    return res;
  }

  // Alternating rounds, best per path.
  const int rounds = smoke ? 1 : 3;
  const int iters = smoke ? 2 : 20;
  double best_eager = 0.0, best_compiled = 0.0;
  for (int round = 0; round < rounds; ++round) {
    auto t0 = Clock::now();
    for (int i = 0; i < iters; ++i) (void)eager_forward(batch);
    const double eager_us = ms_since(t0) * 1000.0 / iters;
    t0 = Clock::now();
    for (int i = 0; i < iters; ++i) (void)model.forward(batch);
    const double compiled_us = ms_since(t0) * 1000.0 / iters;
    if (round == 0 || eager_us < best_eager) best_eager = eager_us;
    if (round == 0 || compiled_us < best_compiled) best_compiled = compiled_us;
  }
  res.eager_us = best_eager;
  res.compiled_us = best_compiled;
  res.speedup = best_compiled > 0.0 ? best_eager / best_compiled : 0.0;

  std::printf(
      "%-5s compile %6.1f ms | arena %lld / naive %lld bytes (-%.1f%%) | "
      "eager %7.0f us vs compiled %7.0f us | speedup %.2fx\n",
      name, res.compile_ms, res.arena_bytes, res.naive_bytes,
      res.reduction_pct, res.eager_us, res.compiled_us, res.speedup);
  return res;
}

void write_json(const std::string& path, const PrecisionResult& fp32,
                const PrecisionResult& int8) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  auto emit = [f](const PrecisionResult& r, const char* trailing) {
    std::fprintf(
        f,
        "  \"%s\": {\"bitwise_equivalent\": %s, \"compile_ms\": %.2f, "
        "\"arena_bytes\": %lld, \"naive_bytes\": %lld, "
        "\"reduction_pct\": %.1f, \"eager_batch_forward_us\": %.1f, "
        "\"compiled_batch_forward_us\": %.1f, \"speedup\": %.2f}%s\n",
        r.name, r.equivalent ? "true" : "false", r.compile_ms, r.arena_bytes,
        r.naive_bytes, r.reduction_pct, r.eager_us, r.compiled_us, r.speedup,
        trailing);
  };
  std::fprintf(f, "{\n  \"model\": \"resnet18\", \"in_h\": %lld, "
                  "\"in_w\": %lld, \"max_batch\": %lld,\n",
               static_cast<long long>(kH), static_cast<long long>(kW),
               static_cast<long long>(kBatch));
  emit(fp32, ",");
  emit(int8, "");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: compile [--smoke] [--json=PATH]\n");
      return 2;
    }
  }

  const std::string checkpoint = make_checkpoint();
  // The eager nets may reference the encoder's parameter storage — keep
  // each encoder alive for the whole measurement.
  auto enc_fp32 = load_encoder(checkpoint);
  serve::Fp32Network fp32_net = serve::compile_fp32(*enc_fp32.backbone);
  const auto fp32 = bench_precision(
      checkpoint, graph::Precision::kF32, "fp32",
      [&](const Tensor& x) -> Tensor { return fp32_net.forward(x); }, smoke);
  auto enc_int8 = load_encoder(checkpoint);
  deploy::Int8Network int8_net = deploy::compile_int8(*enc_int8.backbone);
  const auto int8 = bench_precision(
      checkpoint, graph::Precision::kInt8, "int8",
      [&](const Tensor& x) -> Tensor { return int8_net.forward(x); }, smoke);

  if (!json_path.empty()) write_json(json_path, fp32, int8);
  if (!fp32.equivalent || !int8.equivalent) return 1;
  std::puts("COMPILE_BENCH_OK");
  return 0;
}
