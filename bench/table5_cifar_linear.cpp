// Table 5: linear evaluation across six networks on the CIFAR-100 stand-in.
// Reuses the Table 4 encoder checkpoints via the pretraining cache.
#include "bench_common.hpp"

using namespace cq;

int main() {
  bench::print_preamble(
      "Table 5 — CIFAR linear evaluation, six networks",
      "Frozen-encoder linear probes: SimCLR vs CQ-C (6-16).");

  const auto bundle = core::make_bundle("synth-cifar");
  const char* archs[] = {"resnet18", "resnet34",  "resnet74",
                         "resnet110", "resnet152", "mobilenetv2"};
  const float paper[2][6] = {
      {64.91f, 65.92f, 52.96f, 53.53f, 53.97f, 52.53f},  // SimCLR
      {64.78f, 66.54f, 54.06f, 54.76f, 55.12f, 53.97f},  // CQ-C
  };

  TableWriter table({"Method", "r18", "r34", "r74", "r110", "r152", "mnv2"});
  for (int m = 0; m < 2; ++m) {
    const bool is_cq = m == 1;
    std::vector<std::string> row = {is_cq ? "CQ-C" : "SimCLR"};
    for (int a = 0; a < 6; ++a) {
      auto cfg = bench::standard_pretrain(
          bundle.name,
          is_cq ? core::CqVariant::kCqC : core::CqVariant::kVanilla,
          is_cq ? quant::PrecisionSet::range(6, 16) : quant::PrecisionSet());
      auto encoder = bench::pretrained_encoder(archs[a], bundle, cfg);
      const float acc = eval::linear_eval(encoder, bundle.labeled,
                                          bundle.test,
                                          bench::linear_config())
                            .test_accuracy;
      row.push_back(bench::cell(acc, paper[m][a]));
    }
    table.add_row(row);
  }
  table.print();
  return 0;
}
