// Table 7: ablation of the CQ design pipelines (CQ-A vs CQ-B vs CQ-C,
// precision set 6-16) on the CIFAR stand-in — including the paper's CQ-B
// stability observation, which we report via max gradient norm.
#include "bench_common.hpp"

using namespace cq;

int main() {
  bench::print_preamble(
      "Table 7 — CQ variant ablation",
      "SimCLR baseline vs CQ-A / CQ-B / CQ-C (all 6-16) on ResNet-34/74 + "
      "MobileNetV2. The paper reports CQ-B is prone to gradient explosion; "
      "the last column shows our measured max grad-norm (and a DIVERGED "
      "flag when training blew up).");

  const auto bundle = core::make_bundle("synth-cifar");
  const char* archs[] = {"resnet34", "resnet74", "mobilenetv2"};
  // Paper Table 7: {fp10, fp1, q10, q1} per (arch, method).
  const float paper[3][4][4] = {
      {{63.05f, 45.11f, 61.44f, 43.63f},
       {63.63f, 45.60f, 61.77f, 43.56f},
       {63.57f, 45.26f, 61.76f, 43.60f},
       {63.58f, 48.05f, 61.47f, 45.75f}},
      {{51.93f, 30.40f, 50.37f, 28.56f},
       {51.89f, 29.95f, 51.45f, 28.99f},
       {52.36f, 30.48f, 51.20f, 29.28f},
       {52.52f, 31.39f, 51.12f, 29.70f}},
      {{49.73f, 24.18f, 46.47f, 18.98f},
       {49.93f, 24.57f, 46.01f, 19.38f},
       {51.78f, 25.21f, 47.81f, 20.81f},
       {51.59f, 26.12f, 49.82f, 20.82f}},
  };

  const struct {
    const char* name;
    core::CqVariant variant;
  } methods[] = {{"SimCLR", core::CqVariant::kVanilla},
                 {"CQ-A", core::CqVariant::kCqA},
                 {"CQ-B", core::CqVariant::kCqB},
                 {"CQ-C", core::CqVariant::kCqC}};

  TableWriter table({"Network", "Method", "FP 10%", "FP 1%", "4-bit 10%",
                     "4-bit 1%", "max |grad|"});
  for (int a = 0; a < 3; ++a) {
    for (int m = 0; m < 4; ++m) {
      auto cfg = bench::standard_pretrain(
          bundle.name, methods[m].variant,
          methods[m].variant == core::CqVariant::kVanilla
              ? quant::PrecisionSet()
              : quant::PrecisionSet::range(6, 16));
      core::PretrainStats stats;
      auto encoder = bench::pretrained_encoder(archs[a], bundle, cfg,
                                               "simclr", &stats);
      const auto cells = bench::finetune_four(encoder, bundle);
      std::string grad_note =
          stats.iterations > 0 ? TableWriter::num(stats.max_grad_norm, 1)
                               : "(cached)";
      if (stats.diverged) grad_note += " DIVERGED";
      table.add_row({archs[a], methods[m].name,
                     bench::cell(cells.fp10, paper[a][m][0]),
                     bench::cell(cells.fp1, paper[a][m][1]),
                     bench::cell(cells.q10, paper[a][m][2]),
                     bench::cell(cells.q1, paper[a][m][3]), grad_note});
    }
  }
  table.print();
  return 0;
}
