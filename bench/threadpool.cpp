// Microbench for core::ThreadPool, the dispatcher behind every multi-core
// path (GEMM macro loops, batched im2col, graph executor batch splits).
// Three claims, each pinned as a machine-portable gated metric in
// BENCH_threadpool.json:
//
//  1. Size-1 parity: a pool of size 1 runs parallel_for inline — the same
//     code the repo ran before the pool existed. inline.speedup (raw loop
//     time / size-1 pool time) must stay ~1.0.
//  2. Zero-allocation dispatch: a steady-state dispatch makes no tensor-pool
//     heap allocations on the calling thread (job latch on the stack, POD
//     task slots). dispatch.steady_heap_allocs must stay 0.
//  3. Scaling: on a multi-core host a memory-light kernel speeds up with the
//     pool engaged; on this repo's single-core CI box saxpy.speedup sits at
//     ~1.0 and the gate only fails if the pool makes things WORSE.
//
// `--json=PATH` writes BENCH_threadpool.json; `--smoke` runs coverage +
// parity checks only (CI).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/cq.hpp"
#include "core/threadpool.hpp"

using namespace cq;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Restore the process-wide pool size on scope exit: the bench resizes the
/// pool per section and must not leak a size into later sections.
struct PoolSizeGuard {
  std::size_t saved = core::ThreadPool::instance().size();
  ~PoolSizeGuard() { core::ThreadPool::instance().set_size(saved); }
};

// The measured kernel: y += a*x over a disjoint index range. Memory-light
// enough (2 flops per 8 bytes streamed) that dispatch overhead shows, heavy
// enough that timing is stable. noinline so the raw-loop baseline cannot
// constant-propagate its trip count and vectorize differently than the
// pool path — parity must compare dispatch cost, not codegen luck.
__attribute__((noinline)) void saxpy_range(float* __restrict y,
                                           const float* __restrict x, float a,
                                           std::int64_t b, std::int64_t e) {
  for (std::int64_t i = b; i < e; ++i) y[i] = a * x[i] + y[i];
}

constexpr std::int64_t kInlineN = 1 << 16;
constexpr std::int64_t kSaxpyN = 1 << 20;
constexpr std::int64_t kSaxpyGrain = 1 << 14;
constexpr int kRounds = 3;

/// Wall seconds for `reps` passes of saxpy over n elements, dispatched
/// through the pool at its current size (size 1 == inline).
double time_pool_saxpy(std::int64_t n, std::int64_t grain, int reps) {
  std::vector<float> x(static_cast<std::size_t>(n), 1.5f);
  std::vector<float> y(static_cast<std::size_t>(n), 0.25f);
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r)
    core::parallel_for(n, grain, [&](std::int64_t b, std::int64_t e) {
      saxpy_range(y.data(), x.data(), 0.5f, b, e);
    });
  return seconds_since(t0);
}

/// Wall seconds for `reps` passes of the same kernel as a raw loop — the
/// pre-threadpool baseline the size-1 pool must match.
double time_raw_saxpy(std::int64_t n, int reps) {
  std::vector<float> x(static_cast<std::size_t>(n), 1.5f);
  std::vector<float> y(static_cast<std::size_t>(n), 0.25f);
  const auto t0 = Clock::now();
  for (int r = 0; r < reps; ++r) saxpy_range(y.data(), x.data(), 0.5f, 0, n);
  return seconds_since(t0);
}

/// Mean microseconds per parallel_for dispatch of near-empty chunks at the
/// current pool size, plus the calling thread's tensor-pool heap
/// allocations across all of them (claim: zero).
struct DispatchCost {
  double mean_us = 0.0;
  std::uint64_t heap_allocs = 0;
};

DispatchCost time_dispatch(int dispatches) {
  auto& pool = core::ThreadPool::instance();
  const auto total =
      static_cast<std::int64_t>(pool.size()) * core::ThreadPool::kChunksPerThread;
  std::atomic<std::int64_t> sink{0};
  // Warm the sleep/wake path before measuring.
  for (int r = 0; r < 16; ++r)
    pool.parallel_for(total, 1, [&](std::int64_t b, std::int64_t e) {
      sink.fetch_add(e - b, std::memory_order_relaxed);
    });
  const std::uint64_t allocs0 = core::AllocTracker::thread_allocs();
  const auto t0 = Clock::now();
  for (int r = 0; r < dispatches; ++r)
    pool.parallel_for(total, 1, [&](std::int64_t b, std::int64_t e) {
      sink.fetch_add(e - b, std::memory_order_relaxed);
    });
  DispatchCost c;
  c.mean_us = seconds_since(t0) * 1e6 / dispatches;
  c.heap_allocs = core::AllocTracker::thread_allocs() - allocs0;
  if (sink.load() < 0) std::printf("unreachable\n");  // keep sink live
  return c;
}

/// Every index covered exactly once at several pool sizes — the bench-side
/// smoke twin of the exhaustive fuzz in tests/test_threadpool.cpp.
bool coverage_ok() {
  PoolSizeGuard guard;
  auto& pool = core::ThreadPool::instance();
  for (std::size_t size : {1u, 2u, 3u}) {
    pool.set_size(size);
    constexpr std::int64_t kTotal = 10000;
    std::vector<int> hits(kTotal, 0);
    pool.parallel_for(kTotal, 7, [&](std::int64_t b, std::int64_t e) {
      for (std::int64_t i = b; i < e; ++i) ++hits[static_cast<std::size_t>(i)];
    });
    for (std::int64_t i = 0; i < kTotal; ++i)
      if (hits[static_cast<std::size_t>(i)] != 1) {
        std::fprintf(stderr, "coverage FAILURE at size %zu index %lld\n",
                     size, static_cast<long long>(i));
        return false;
      }
  }
  return true;
}

struct BenchResult {
  double inline_speedup = 0.0;   // raw / size-1 pool, ~1.0
  double serial_ms = 0.0;        // raw loop
  double pool1_ms = 0.0;         // size-1 pool
  DispatchCost dispatch;
  std::size_t dispatch_threads = 0;
  double serial_gflops = 0.0;
  double pool_gflops = 0.0;
  double pool_speedup = 0.0;     // pool at configured size / serial
  std::size_t pool_threads = 0;
};

BenchResult run_bench() {
  PoolSizeGuard guard;
  auto& pool = core::ThreadPool::instance();
  BenchResult r;

  // 1. Size-1 parity, best of kRounds per side.
  pool.set_size(1);
  constexpr int kInlineReps = 200;
  for (int round = 0; round < kRounds; ++round) {
    const double raw = time_raw_saxpy(kInlineN, kInlineReps);
    const double inl = time_pool_saxpy(kInlineN, kInlineN, kInlineReps);
    r.serial_ms = round == 0 ? raw * 1e3 : std::min(r.serial_ms, raw * 1e3);
    r.pool1_ms = round == 0 ? inl * 1e3 : std::min(r.pool1_ms, inl * 1e3);
  }
  r.inline_speedup = r.pool1_ms > 0.0 ? r.serial_ms / r.pool1_ms : 0.0;

  // 2. Dispatch overhead + allocation accounting at a real multi-thread
  // size even on a single-core host (the wakeup path must still be cheap
  // and allocation-free there).
  r.dispatch_threads = std::max<std::size_t>(2, core::configured_threads());
  pool.set_size(r.dispatch_threads);
  for (int round = 0; round < kRounds; ++round) {
    const DispatchCost c = time_dispatch(/*dispatches=*/2000);
    if (round == 0 || c.mean_us < r.dispatch.mean_us) r.dispatch.mean_us = c.mean_us;
    r.dispatch.heap_allocs += c.heap_allocs;
  }

  // 3. Scaling at the configured size.
  constexpr int kSaxpyReps = 50;
  const double flops =
      2.0 * static_cast<double>(kSaxpyN) * kSaxpyReps;
  r.pool_threads = core::configured_threads();
  double serial_s = 0.0, pool_s = 0.0;
  for (int round = 0; round < kRounds; ++round) {
    pool.set_size(1);
    const double s = time_pool_saxpy(kSaxpyN, kSaxpyGrain, kSaxpyReps);
    pool.set_size(r.pool_threads);
    const double p = time_pool_saxpy(kSaxpyN, kSaxpyGrain, kSaxpyReps);
    serial_s = round == 0 ? s : std::min(serial_s, s);
    pool_s = round == 0 ? p : std::min(pool_s, p);
  }
  r.serial_gflops = serial_s > 0.0 ? flops / serial_s * 1e-9 : 0.0;
  r.pool_gflops = pool_s > 0.0 ? flops / pool_s * 1e-9 : 0.0;
  r.pool_speedup = serial_s > 0.0 ? serial_s / pool_s : 0.0;

  std::printf(
      "inline  raw %7.2f ms vs size-1 pool %7.2f ms  (speedup %.2f)\n"
      "dispatch %zu threads  %7.2f us/dispatch  heap allocs %llu\n"
      "saxpy   serial %.2f GFLOP/s vs pool(%zu) %.2f GFLOP/s  "
      "(speedup %.2f)\n",
      r.serial_ms, r.pool1_ms, r.inline_speedup, r.dispatch_threads,
      r.dispatch.mean_us,
      static_cast<unsigned long long>(r.dispatch.heap_allocs),
      r.serial_gflops, r.pool_threads, r.pool_gflops, r.pool_speedup);
  return r;
}

void write_json(const std::string& path, const BenchResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"threadpool\",\n");
  std::fprintf(f,
               "  \"regenerate\": \"build/bench/threadpool "
               "--json=BENCH_threadpool.json\",\n");
  std::fprintf(f,
               "  \"hardware\": {\"cores\": %u, \"cq_threads\": %llu},\n",
               std::thread::hardware_concurrency(),
               static_cast<unsigned long long>(core::configured_threads()));
  std::fprintf(f,
               "  \"inline\": {\"serial_ms\": %.3f, \"pool1_ms\": %.3f, "
               "\"speedup\": %.3f},\n",
               r.serial_ms, r.pool1_ms, r.inline_speedup);
  std::fprintf(f,
               "  \"dispatch\": {\"threads\": %llu, \"mean_us\": %.2f, "
               "\"steady_heap_allocs\": %llu},\n",
               static_cast<unsigned long long>(r.dispatch_threads),
               r.dispatch.mean_us,
               static_cast<unsigned long long>(r.dispatch.heap_allocs));
  std::fprintf(f,
               "  \"saxpy\": {\"n\": %lld, \"grain\": %lld, "
               "\"serial_gflops\": %.3f, \"pool_gflops\": %.3f, "
               "\"threads\": %llu, \"speedup\": %.3f}\n",
               static_cast<long long>(kSaxpyN),
               static_cast<long long>(kSaxpyGrain), r.serial_gflops,
               r.pool_gflops,
               static_cast<unsigned long long>(r.pool_threads),
               r.pool_speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

int smoke() {
  if (!coverage_ok()) return 1;
  PoolSizeGuard guard;
  core::ThreadPool::instance().set_size(2);
  const DispatchCost c = time_dispatch(/*dispatches=*/50);
  if (c.heap_allocs != 0) {
    std::fprintf(stderr, "smoke: dispatch made %llu heap allocations\n",
                 static_cast<unsigned long long>(c.heap_allocs));
    return 1;
  }
  std::printf("THREADPOOL_SMOKE_OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strcmp(argv[i], "--smoke") == 0) smoke_only = true;
  }
  if (smoke_only) return smoke();
  if (!coverage_ok()) return 1;
  const BenchResult r = run_bench();
  if (!json_path.empty()) write_json(json_path, r);
  return 0;
}
