// Table 4: SimCLR vs CQ-C (6-16) across six networks on the CIFAR-100
// stand-in, fine-tuned with 10%/1% labels at FP and 4-bit.
#include "bench_common.hpp"

using namespace cq;

int main() {
  bench::print_preamble(
      "Table 4 — CIFAR fine-tuning, six networks",
      "SimCLR vs CQ-C (precision set 6-16) on "
      "ResNet-18/34/74/110/152 + MobileNetV2.");

  const auto bundle = core::make_bundle("synth-cifar");
  const char* archs[] = {"resnet18", "resnet34",  "resnet74",
                         "resnet110", "resnet152", "mobilenetv2"};
  // Paper Table 4 (fp10, fp1, q10, q1) per (arch, method=SimCLR|CQ-C).
  const float paper[6][2][4] = {
      {{61.51f, 42.51f, 59.78f, 40.73f}, {61.75f, 43.80f, 60.12f, 42.59f}},
      {{63.05f, 45.11f, 61.44f, 43.63f}, {63.58f, 48.05f, 61.47f, 45.75f}},
      {{51.93f, 30.40f, 50.37f, 28.56f}, {52.52f, 31.39f, 51.12f, 29.70f}},
      {{52.78f, 31.16f, 51.69f, 30.11f}, {54.47f, 33.17f, 52.28f, 32.66f}},
      {{53.57f, 32.93f, 52.14f, 31.06f}, {55.44f, 34.98f, 53.04f, 33.54f}},
      {{49.73f, 24.18f, 46.47f, 18.98f}, {51.59f, 26.12f, 49.82f, 20.82f}},
  };

  TableWriter table({"Network", "Method", "FP 10%", "FP 1%", "4-bit 10%",
                     "4-bit 1%"});
  for (int a = 0; a < 6; ++a) {
    for (int m = 0; m < 2; ++m) {
      const bool is_cq = m == 1;
      auto cfg = bench::standard_pretrain(
          bundle.name,
          is_cq ? core::CqVariant::kCqC : core::CqVariant::kVanilla,
          is_cq ? quant::PrecisionSet::range(6, 16) : quant::PrecisionSet());
      auto encoder = bench::pretrained_encoder(archs[a], bundle, cfg);
      const auto cells = bench::finetune_four(encoder, bundle);
      table.add_row({archs[a], is_cq ? "CQ-C" : "SimCLR",
                     bench::cell(cells.fp10, paper[a][m][0]),
                     bench::cell(cells.fp1, paper[a][m][1]),
                     bench::cell(cells.q10, paper[a][m][2]),
                     bench::cell(cells.q1, paper[a][m][3])});
    }
  }
  table.print();
  return 0;
}
