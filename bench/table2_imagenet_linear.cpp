// Table 2: linear evaluation on the ImageNet stand-in (SimCLR vs CQ-C vs
// CQ-A). Reuses the Table 1 encoder checkpoints via the pretraining cache.
#include "bench_common.hpp"

using namespace cq;

int main() {
  bench::print_preamble(
      "Table 2 — ImageNet linear evaluation",
      "Frozen-encoder linear probes for SimCLR / CQ-C (8-16) / CQ-A (6-16).");

  const auto bundle = core::make_bundle("synth-imagenet");
  // Paper Table 2: rows ResNet-18/34, columns SimCLR / CQ-C / CQ-A.
  const float paper[2][3] = {{29.31f, 31.90f, 44.91f},
                             {34.96f, 36.14f, 47.88f}};

  TableWriter table({"Network", "SimCLR", "CQ-C", "CQ-A"});
  const char* archs[] = {"resnet18", "resnet34"};
  for (int a = 0; a < 2; ++a) {
    const struct {
      core::CqVariant variant;
      int lo, hi;
    } methods[] = {{core::CqVariant::kVanilla, 0, 0},
                   {core::CqVariant::kCqC, 8, 16},
                   {core::CqVariant::kCqA, 6, 16}};
    std::vector<std::string> row = {archs[a]};
    for (int m = 0; m < 3; ++m) {
      auto cfg = bench::standard_pretrain(
          bundle.name, methods[m].variant,
          methods[m].lo > 0
              ? quant::PrecisionSet::range(methods[m].lo, methods[m].hi)
              : quant::PrecisionSet());
      auto encoder = bench::pretrained_encoder(archs[a], bundle, cfg);
      const float acc = eval::linear_eval(encoder, bundle.labeled,
                                          bundle.test,
                                          bench::linear_config())
                            .test_accuracy;
      row.push_back(bench::cell(acc, paper[a][m]));
    }
    table.add_row(row);
  }
  table.print();
  return 0;
}
