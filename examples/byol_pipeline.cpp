// BYOL pipeline (paper Sec. 3.4 / Table 6): negative-free self-supervised
// learning with an EMA target network, with and without Contrastive Quant.
//
// Usage: ./examples/byol_pipeline [arch] [epochs]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/byol.hpp"
#include "data/synth.hpp"
#include "eval/classifier.hpp"

int main(int argc, char** argv) {
  using namespace cq;
  const std::string arch = argc > 1 ? argv[1] : "resnet18";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 10;

  const auto synth_cfg = data::synth_cifar_config();
  Rng data_rng(21);
  const auto ssl_set = data::make_synth_dataset(synth_cfg, 224, data_rng);
  const auto labeled = data::make_synth_dataset(synth_cfg, 256, data_rng);
  const auto test = data::make_synth_dataset(synth_cfg, 128, data_rng);

  for (const bool use_cq : {false, true}) {
    Rng model_rng(42);
    auto encoder = models::make_encoder(arch, model_rng);

    core::PretrainConfig pretrain;
    pretrain.variant =
        use_cq ? core::CqVariant::kCqC : core::CqVariant::kVanilla;
    pretrain.precisions = quant::PrecisionSet::range(6, 16);
    pretrain.epochs = epochs;
    pretrain.batch_size = 32;
    pretrain.lr = 0.05f;      // BYOL prefers a gentler LR than NT-Xent
    pretrain.byol_ema = 0.99f;

    std::printf("== %s ==\n", use_cq ? "CQ-C on BYOL" : "vanilla BYOL");
    core::ByolCqTrainer trainer(encoder, pretrain);
    const auto stats = trainer.train(ssl_set);
    std::printf("  loss %.3f -> %.3f (%.1fs, %s)\n",
                stats.epoch_loss.front(), stats.epoch_loss.back(),
                stats.seconds, stats.diverged ? "DIVERGED" : "stable");

    Rng split_rng(77);
    const auto lab10 = data::subset_fraction(labeled, 0.10, split_rng);
    eval::EvalConfig ft;
    ft.epochs = 25;
    std::printf("  fine-tune 10%% labels (FP):    %.1f%%\n",
                eval::finetune_eval(encoder, lab10, test, ft).test_accuracy);
    ft.eval_bits = 4;
    std::printf("  fine-tune 10%% labels (4-bit): %.1f%%\n",
                eval::finetune_eval(encoder, lab10, test, ft).test_accuracy);
  }
  return 0;
}
