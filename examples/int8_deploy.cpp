// Deployment: compile a (pre)trained encoder to int8 integer arithmetic —
// the efficiency side of the paper's premise — and compare accuracy and
// latency against fp32 inference.
//
// Usage: ./examples/int8_deploy [arch]
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "deploy/int8.hpp"
#include "eval/classifier.hpp"
#include "eval/separability.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace cq;
  const std::string arch = argc > 1 ? argv[1] : "resnet18";

  const auto synth_cfg = data::synth_cifar_config();
  Rng data_rng(61);
  const auto ssl_set = data::make_synth_dataset(synth_cfg, 192, data_rng);
  const auto test = data::make_synth_dataset(synth_cfg, 128, data_rng);

  Rng model_rng(42);
  auto encoder = models::make_encoder(arch, model_rng);
  core::PretrainConfig pretrain;
  pretrain.variant = core::CqVariant::kCqC;
  pretrain.precisions = quant::PrecisionSet::range(6, 16);
  pretrain.epochs = 6;
  pretrain.batch_size = 32;
  std::printf("pretraining %s with CQ-C (quantization-aware features)...\n",
              arch.c_str());
  core::SimClrCqTrainer trainer(encoder, pretrain);
  trainer.train(ssl_set);

  encoder.backbone->set_mode(nn::Mode::kEval);
  const auto compiled = deploy::compile_int8(*encoder.backbone);
  std::printf("compiled %zu int8 ops; weights %lld bytes (fp32 would be "
              "%lld)\n",
              compiled.op_count(),
              static_cast<long long>(compiled.weight_bytes()),
              static_cast<long long>(encoder.backbone->parameter_count() *
                                     4));

  // Feature agreement + kNN accuracy, fp32 vs int8.
  const Tensor batch =
      data::gather_images(test, [&] {
        std::vector<std::int64_t> idx(static_cast<std::size_t>(test.size()));
        for (std::int64_t i = 0; i < test.size(); ++i)
          idx[static_cast<std::size_t>(i)] = i;
        return idx;
      }());

  // Warm both paths first: the compiled instance allocates its im2col /
  // packing scratch lazily on the first call, which would otherwise be
  // billed to the int8 timing while the encoder is already warm from
  // training.
  const Tensor f_fp = encoder.forward(batch);
  const Tensor f_q = compiled.forward(batch);
  // Best of three timed runs each — one run on a shared core is too noisy
  // to compare paths this close.
  double fp_ms = 1e30;
  double q_ms = 1e30;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t_fp;
    (void)encoder.forward(batch);
    fp_ms = std::min(fp_ms, t_fp.millis());
    Timer t_q;
    (void)compiled.forward(batch);
    q_ms = std::min(q_ms, t_q.millis());
  }

  const float knn_fp = eval::knn_accuracy(f_fp, test.labels, 5);
  const float knn_q = eval::knn_accuracy(f_q, test.labels, 5);
  std::printf("kNN accuracy on features: fp32 %.1f%%  int8 %.1f%%\n", knn_fp,
              knn_q);
  std::printf("full-test-set forward:    fp32 %.0f ms  int8 %.0f ms\n", fp_ms,
              q_ms);
  std::printf("(int8 wins on both memory and speed — integer GEMM with "
              "quantize-on-pack; see DESIGN.md Sec. 12)\n");
  return 0;
}
