// End-to-end binary-embedding vector search: pretrain a small CQ encoder,
// extract features for a corpus, build a packed 1-bit index with fitted
// per-coordinate thresholds, stand up search::Service (encode -> binarize ->
// Hamming top-k with cosine rerank), query it from concurrent clients, and
// print the merged engine+search stats JSON.
//
// Usage: ./examples/search_demo [1bit|2bit]
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "eval/classifier.hpp"
#include "models/encoder.hpp"
#include "search/service.hpp"

int main(int argc, char** argv) {
  using namespace cq;
  const std::string kind = argc > 1 ? argv[1] : "1bit";
  const auto layout = kind == "2bit" ? search::CodeLayout::k2Bit
                                     : search::CodeLayout::k1Bit;

  // 1. Pretrain a small contrastive-quant encoder on the synthetic set.
  const auto synth_cfg = data::synth_cifar_config();
  Rng data_rng(61);
  const auto ssl_set = data::make_synth_dataset(synth_cfg, 128, data_rng);
  const auto corpus = data::make_synth_dataset(synth_cfg, 96, data_rng);
  const auto queries = data::make_synth_dataset(synth_cfg, 4, data_rng);

  Rng model_rng(42);
  auto encoder = models::make_encoder("resnet18", model_rng);
  core::PretrainConfig pretrain;
  pretrain.variant = core::CqVariant::kCqC;
  pretrain.precisions = quant::PrecisionSet::range(6, 16);
  pretrain.epochs = 2;
  pretrain.batch_size = 32;
  std::printf("pretraining resnet18 with CQ-C...\n");
  core::SimClrCqTrainer trainer(encoder, pretrain);
  trainer.train(ssl_set);

  // 2. Corpus features -> fitted binarizer -> packed index. fit() picks
  //    per-coordinate medians (tertiles for 2-bit), which beats a global
  //    sign split on heterogeneous contrastive coordinates.
  const Tensor features = eval::extract_features(encoder, corpus, 32);
  const auto rows = features.dim(0);
  const auto dim = features.dim(1);
  auto binarizer =
      search::Binarizer::fit(features.data(), rows, dim, layout);
  search::IndexConfig index_cfg;
  index_cfg.dim = dim;
  index_cfg.layout = layout;
  index_cfg.store_embeddings = true;  // enables exact-cosine rerank
  search::Index index(index_cfg, std::move(binarizer));
  std::vector<std::uint64_t> ids(static_cast<std::size_t>(rows));
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = 1000 + i;
  index.add(features.data(), ids.data(), rows);
  std::printf("indexed %lld codes, %s, %lld words/row\n",
              static_cast<long long>(index.size()), kind.c_str(),
              static_cast<long long>(index.words_per_row()));

  // 3. Checkpoint the encoder and stand the service up behind it.
  const std::string checkpoint =
      (std::filesystem::temp_directory_path() / "cq_search_demo_ckpt.bin")
          .string();
  encoder.backbone->set_mode(nn::Mode::kEval);
  models::save_module(checkpoint, *encoder.backbone);
  search::ServiceConfig cfg;
  cfg.engine.checkpoint = checkpoint;
  cfg.engine.in_h = synth_cfg.height;
  cfg.engine.in_w = synth_cfg.width;
  cfg.engine.workers = 1;
  cfg.engine.max_batch = 8;
  cfg.engine.max_wait = std::chrono::microseconds(1000);
  search::Service service(cfg, std::move(index));

  // 4. Concurrent clients: encode + scan, overfetch 4x, cosine rerank.
  search::QueryOptions opts;
  opts.k = 5;
  opts.overfetch = 4;
  opts.rerank = true;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < queries.images.size(); ++c) {
    clients.emplace_back([&, c] {
      search::Service::Context ctx;  // one per querying thread
      service.prewarm(opts, ctx);    // -> 0-alloc steady state
      search::Result hits[5];
      std::int64_t n = 0;
      const auto st = service.search(
          queries.images[c].data(), opts, ctx, hits, &n,
          serve::Clock::now() + std::chrono::seconds(5));
      if (st != serve::Status::kOk) return;
      std::printf("query %zu:", c);
      for (std::int64_t i = 0; i < n; ++i)
        std::printf("  id=%llu d=%u cos=%.3f",
                    static_cast<unsigned long long>(hits[i].id), hits[i].dist,
                    hits[i].score);
      std::printf("\n");
    });
  }
  for (auto& t : clients) t.join();

  // 5. Incremental add is safe against live queries (exclusive lock).
  service.add(features.data(), ids.data(), 1);
  std::printf("after add: %lld codes\n",
              static_cast<long long>(service.index().size()));

  std::printf("\n%s\n", service.stats_json().c_str());
  service.stop();
  return 0;
}
