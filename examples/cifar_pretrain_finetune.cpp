// Semi-supervised workflow (paper Tables 1/4): pretrain with a chosen CQ
// variant, then fine-tune with a small labeled fraction at FP or 4-bit.
//
// Usage: ./examples/cifar_pretrain_finetune [variant] [arch] [epochs]
//   variant: simclr | cq-a | cq-b | cq-c | cq-quant   (default cq-c)
//   arch:    resnet18|resnet34|resnet74|resnet110|resnet152|mobilenetv2
//   epochs:  pretraining epochs (default 10)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "eval/classifier.hpp"

int main(int argc, char** argv) {
  using namespace cq;
  const std::string variant_name = argc > 1 ? argv[1] : "cq-c";
  const std::string arch = argc > 2 ? argv[2] : "resnet18";
  const int epochs = argc > 3 ? std::atoi(argv[3]) : 10;
  if (!models::is_known_arch(arch)) {
    std::fprintf(stderr, "unknown arch '%s'\n", arch.c_str());
    return 1;
  }

  const auto synth_cfg = data::synth_cifar_config();
  Rng data_rng(11);
  const auto ssl_set = data::make_synth_dataset(synth_cfg, 256, data_rng);
  const auto labeled = data::make_synth_dataset(synth_cfg, 320, data_rng);
  const auto test = data::make_synth_dataset(synth_cfg, 128, data_rng);

  Rng model_rng(42);
  auto encoder = models::make_encoder(arch, model_rng);

  core::PretrainConfig pretrain;
  pretrain.variant = core::parse_variant(variant_name);
  pretrain.precisions = quant::PrecisionSet::range(6, 16);
  pretrain.epochs = epochs;
  pretrain.batch_size = 32;
  if (pretrain.variant == core::CqVariant::kCqQuant)
    pretrain.augment.identity = true;

  std::printf("pretraining %s on %s (%d epochs, precision set %s)...\n",
              variant_name.c_str(), arch.c_str(), epochs,
              pretrain.precisions.str().c_str());
  core::SimClrCqTrainer trainer(encoder, pretrain);
  const auto stats = trainer.train(ssl_set);
  if (stats.diverged) {
    std::printf("training DIVERGED (max grad norm %.1f) — the paper reports "
                "exactly this failure mode for CQ-B\n",
                stats.max_grad_norm);
    return 0;
  }
  std::printf("done: loss %.3f -> %.3f (%.1fs)\n", stats.epoch_loss.front(),
              stats.epoch_loss.back(), stats.seconds);

  // The four evaluation cells of the paper's fine-tuning tables.
  Rng split_rng(77);
  const auto lab10 = data::subset_fraction(labeled, 0.10, split_rng);
  const auto lab1 = data::subset_fraction(labeled, 0.01, split_rng);
  const std::pair<const char*, const data::Dataset*> splits[] = {
      {"10% labels", &lab10}, {"1% labels", &lab1}};
  for (const auto& [tag, subset] : splits) {
    for (int bits : {32, 4}) {
      eval::EvalConfig ft;
      ft.epochs = 25;
      ft.eval_bits = bits;
      const auto result = eval::finetune_eval(encoder, *subset, test, ft);
      std::printf("fine-tune %-10s %5s : %.1f%%\n", tag,
                  bits == 32 ? "FP" : "4-bit", result.test_accuracy);
    }
  }
  return 0;
}
