// End-to-end serving: pretrain a small CQ encoder, checkpoint it, stand up
// the inference engine, push a burst of concurrent requests through the
// dynamic batcher, and print the stats JSON.
//
// Usage: ./examples/serve_demo [fp32|int8]
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "models/encoder.hpp"
#include "serve/engine.hpp"

int main(int argc, char** argv) {
  using namespace cq;
  const std::string kind = argc > 1 ? argv[1] : "fp32";

  // 1. Pretrain a small contrastive-quant encoder on the synthetic set.
  const auto synth_cfg = data::synth_cifar_config();
  Rng data_rng(61);
  const auto ssl_set = data::make_synth_dataset(synth_cfg, 128, data_rng);
  const auto serve_set = data::make_synth_dataset(synth_cfg, 32, data_rng);

  Rng model_rng(42);
  auto encoder = models::make_encoder("resnet18", model_rng);
  core::PretrainConfig pretrain;
  pretrain.variant = core::CqVariant::kCqA;
  pretrain.precisions = quant::PrecisionSet::range(6, 16);
  pretrain.epochs = 2;
  pretrain.batch_size = 32;
  std::printf("pretraining resnet18 with CQ-A...\n");
  core::SimClrCqTrainer trainer(encoder, pretrain);
  trainer.train(ssl_set);

  // 2. Checkpoint: the engine owns its own copy of the model from here on.
  const std::string checkpoint =
      (std::filesystem::temp_directory_path() / "cq_serve_demo_ckpt.bin")
          .string();
  encoder.backbone->set_mode(nn::Mode::kEval);
  models::save_module(checkpoint, *encoder.backbone);
  std::printf("checkpointed to %s\n", checkpoint.c_str());

  // 3. Serve: one worker, micro-batches up to 8, 1ms batching window.
  serve::EngineConfig cfg;
  cfg.checkpoint = checkpoint;
  cfg.in_h = synth_cfg.height;
  cfg.in_w = synth_cfg.width;
  cfg.instance =
      kind == "int8" ? serve::InstanceKind::kInt8 : serve::InstanceKind::kFp32;
  cfg.workers = 1;
  cfg.max_batch = 8;
  cfg.max_wait = std::chrono::microseconds(1000);
  serve::Engine engine(cfg);
  std::printf("engine up: %s instance, feature_dim=%lld\n",
              serve::instance_kind_name(cfg.instance),
              static_cast<long long>(engine.feature_dim()));

  // 4. A burst of concurrent clients, two requests each.
  const std::size_t clients = 8;
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<float> out(
          static_cast<std::size_t>(engine.feature_dim()));
      serve::Request r;
      for (int i = 0; i < 2; ++i) {
        r.reset();
        r.input = serve_set.images[c].data();
        r.output = out.data();
        r.deadline = serve::Clock::now() + std::chrono::seconds(5);
        if (!engine.submit(&r)) return;
        if (r.wait() != serve::Status::kOk) return;
      }
      std::printf("client %zu: feature[0..3] = %.4f %.4f %.4f %.4f\n", c,
                  out[0], out[1], out[2], out[3]);
    });
  }
  for (auto& t : threads) t.join();

  // 5. Stats out, engine down.
  std::printf("\n%s\n", engine.stats_json().c_str());
  engine.stop();
  return 0;
}
