// Quickstart: the Contrastive Quant API in ~60 lines.
//
//   1. build a quantization-aware encoder,
//   2. pretrain it with CQ-C (quantization-as-augmentation on top of
//      SimCLR's input augmentations),
//   3. probe the learned representation with a linear classifier.
//
// Run:  ./examples/quickstart
#include <cstdio>

#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "eval/classifier.hpp"

int main() {
  using namespace cq;

  // -- data: a procedural CIFAR-like dataset (no downloads needed) --------
  const auto synth_cfg = data::synth_cifar_config();
  Rng data_rng(1);
  const auto ssl_set = data::make_synth_dataset(synth_cfg, 192, data_rng);
  const auto labeled = data::make_synth_dataset(synth_cfg, 160, data_rng);
  const auto test = data::make_synth_dataset(synth_cfg, 96, data_rng);

  // -- encoder: every conv weight and activation is fake-quantized at the
  //    bit-width selected on encoder.policy (paper Eq. 4/10) --------------
  Rng model_rng(7);
  auto encoder = models::make_encoder("resnet18", model_rng);
  std::printf("encoder: %s, feature_dim=%lld, params=%lld\n",
              encoder.arch.c_str(),
              static_cast<long long>(encoder.feature_dim),
              static_cast<long long>(encoder.backbone->parameter_count()));

  // -- pretraining: CQ-C samples two precisions per iteration and enforces
  //    feature consistency across views AND across precisions (Eq. 9) ----
  core::PretrainConfig pretrain;
  pretrain.variant = core::CqVariant::kCqC;
  pretrain.precisions = quant::PrecisionSet::range(6, 16);
  pretrain.epochs = 8;
  pretrain.batch_size = 32;
  core::SimClrCqTrainer trainer(encoder, pretrain);
  const auto stats = trainer.train(ssl_set);
  std::printf("pretraining: loss %.3f -> %.3f over %lld iterations (%.1fs)\n",
              stats.epoch_loss.front(), stats.epoch_loss.back(),
              static_cast<long long>(stats.iterations), stats.seconds);

  // -- evaluation: frozen-encoder linear probe ----------------------------
  eval::EvalConfig probe;
  probe.epochs = 30;
  const auto result = eval::linear_eval(encoder, labeled, test, probe);
  std::printf("linear evaluation accuracy: %.1f%% (chance %.1f%%)\n",
              result.test_accuracy,
              100.0f / static_cast<float>(test.num_classes));
  return 0;
}
