// Transfer to detection (paper Table 3): pretrain an encoder with CQ, move
// its weights into a spatial trunk, train a small grid detection head on
// top of the frozen features, and report VOC-style AP.
//
// Usage: ./examples/detection_transfer [variant] [epochs]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/simclr.hpp"
#include "data/synth.hpp"
#include "detect/ap.hpp"
#include "detect/dataset.hpp"
#include "detect/head.hpp"
#include "models/encoder.hpp"
#include "models/resnet.hpp"

int main(int argc, char** argv) {
  using namespace cq;
  const std::string variant_name = argc > 1 ? argv[1] : "cq-a";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 10;

  // 1. Pretrain on the classification stand-in.
  const auto synth_cfg = data::synth_imagenet_config();
  Rng data_rng(31);
  const auto ssl_set = data::make_synth_dataset(synth_cfg, 256, data_rng);

  Rng model_rng(42);
  auto encoder = models::make_encoder("resnet18", model_rng);
  core::PretrainConfig pretrain;
  pretrain.variant = core::parse_variant(variant_name);
  pretrain.precisions = quant::PrecisionSet::range(6, 16);
  pretrain.epochs = epochs;
  pretrain.batch_size = 32;
  if (pretrain.variant == core::CqVariant::kCqQuant)
    pretrain.augment.identity = true;
  std::printf("pretraining %s for %d epochs...\n", variant_name.c_str(),
              epochs);
  core::SimClrCqTrainer trainer(encoder, pretrain);
  trainer.train(ssl_set);

  // 2. Move the pooled backbone's weights into a spatial trunk.
  //    (GlobalAvgPool has no parameters, so the checkpoint is compatible.)
  models::save_module("detection_trunk.ckpt", *encoder.backbone);
  Rng trunk_rng(1);
  auto policy = std::make_shared<quant::QuantPolicy>();
  std::int64_t trunk_dim = 0;
  auto trunk = models::build_resnet(models::resnet18_config(), policy,
                                    trunk_rng, &trunk_dim,
                                    /*include_gap=*/false);
  models::load_module("detection_trunk.ckpt", *trunk);

  // 3. Detection data: cluttered canvases with one object + tight box.
  detect::DetectionConfig det_cfg;
  det_cfg.synth = synth_cfg;
  Rng det_rng(55);
  const auto det_train = detect::make_detection_dataset(det_cfg, 128, det_rng);
  const auto det_test = detect::make_detection_dataset(det_cfg, 64, det_rng);

  // 4. Train the head on frozen features, evaluate AP.
  detect::DetectorConfig head_cfg;
  head_cfg.epochs = 30;
  detect::Detector detector(*trunk, trunk_dim, head_cfg);
  std::printf("training detection head on frozen %s features...\n",
              variant_name.c_str());
  detector.train(det_train);
  const auto ap = detect::evaluate_ap(detector.detect(det_test),
                                      det_test.boxes);
  std::printf("AP = %.1f  AP50 = %.1f  AP75 = %.1f\n", 100.0f * ap.ap,
              100.0f * ap.ap50, 100.0f * ap.ap75);
  return 0;
}
