// Prints what the graph compiler does to a model: the traced IR as it comes
// off the tracer, the pass log, the IR after the pipeline, and the arena
// plan (per-node offsets plus planned-vs-naive footprint).
//
//   ./build/examples/compile_inspect [arch] [fp32|int8]
//
// Default: resnet18 fp32 at 12x12 inputs, arena planned for batch 8.
#include <cstdio>
#include <cstring>
#include <string>

#include "graph/executor.hpp"
#include "graph/passes.hpp"
#include "graph/plan.hpp"
#include "graph/tracer.hpp"
#include "models/encoder.hpp"
#include "util/rng.hpp"

using namespace cq;

int main(int argc, char** argv) {
  const std::string arch = argc > 1 ? argv[1] : "resnet18";
  const bool int8 = argc > 2 && std::strcmp(argv[2], "int8") == 0;
  constexpr std::int64_t kH = 12, kW = 12, kMaxBatch = 8;

  Rng rng(1);
  auto enc = models::make_encoder(arch, rng);
  enc.policy->set_full_precision();
  enc.backbone->set_mode(nn::Mode::kEval);

  graph::Graph g = graph::trace(*enc.backbone, Shape{3, kH, kW});
  std::printf("=== traced IR (%s, %s, %lldx%lld) ===\n%s\n", arch.c_str(),
              int8 ? "int8" : "fp32", static_cast<long long>(kH),
              static_cast<long long>(kW), graph::dump(g).c_str());

  const auto log = graph::run_default_passes(
      g, int8 ? graph::Precision::kInt8 : graph::Precision::kF32);
  std::printf("=== pass log ===\n");
  for (const auto& p : log)
    std::printf("%-24s %-9s %zu nodes\n", p.name,
                p.changed ? "changed" : "no-op", p.nodes_after);

  const graph::ArenaPlan plan = graph::plan_arena(g, kMaxBatch);
  std::printf("\n=== compiled plan (arena for batch %lld) ===\n%s",
              static_cast<long long>(kMaxBatch),
              graph::dump(g, plan).c_str());
  const double pct =
      plan.naive_bytes > 0
          ? 100.0 * (1.0 - static_cast<double>(plan.arena_bytes) /
                               static_cast<double>(plan.naive_bytes))
          : 0.0;
  std::printf(
      "\narena %lld bytes vs naive %lld bytes — planner saves %.1f%%\n",
      static_cast<long long>(plan.arena_bytes),
      static_cast<long long>(plan.naive_bytes), pct);
  return 0;
}
